package world

import (
	"math"
	"testing"
)

func TestAblateNoPrivateBrowsing(t *testing.T) {
	w := Generate(Config{Seed: 5, NumSites: 1000, Ablate: Ablations{NoPrivateBrowsing: true}})
	for i := range w.Sites {
		if w.Sites[i].PrivateShare != 0 {
			t.Fatalf("site %d private share %v", i, w.Sites[i].PrivateShare)
		}
	}
}

func TestAblateNoWeightBoost(t *testing.T) {
	// Without boosts, category no longer predicts per-site weight given
	// the generation index; spot-check that adult sites stop being
	// systematically heavier than blog sites at similar generation ranks.
	boosted := Generate(Config{Seed: 6, NumSites: 5000})
	flat := Generate(Config{Seed: 6, NumSites: 5000, Ablate: Ablations{NoWeightBoost: true}})

	ratio := func(w *World) float64 {
		var adult, blog float64
		var na, nb int
		for i := range w.Sites {
			s := &w.Sites[i]
			switch s.Category {
			case Adult:
				adult += s.Weight
				na++
			case Blog:
				blog += s.Weight
				nb++
			}
		}
		if na == 0 || nb == 0 {
			return 1
		}
		return (adult / float64(na)) / (blog / float64(nb))
	}
	if rb, rf := ratio(boosted), ratio(flat); rb <= rf {
		t.Errorf("boosted adult/blog weight ratio %.2f not above flat %.2f", rb, rf)
	}
}

func TestAblateNoOpenness(t *testing.T) {
	base := Generate(Config{Seed: 7, NumSites: 2000})
	open := Generate(Config{Seed: 7, NumSites: 2000, Ablate: Ablations{NoOpenness: true}})

	// CN clients' weight mass on foreign sites must rise sharply when the
	// firewall is ablated.
	foreignShare := func(w *World) float64 {
		weights := w.SiteWeights(CN, Windows)
		var foreign, total float64
		for i, v := range weights {
			total += v
			if w.Site(int32(i)).Home != CN {
				foreign += v
			}
		}
		return foreign / total
	}
	fb, fo := foreignShare(base), foreignShare(open)
	if fo <= fb*2 {
		t.Errorf("foreign share with open borders %.3f not >> base %.3f", fo, fb)
	}
}

func TestDistortionsDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 8, NumSites: 500})
	b := Generate(Config{Seed: 8, NumSites: 500})
	pa, pb := a.PanelDistortion(), b.PanelDistortion()
	wa, wb := a.WorkDistortion(), b.WorkDistortion()
	for i := range pa {
		if pa[i] != pb[i] || wa[i] != wb[i] {
			t.Fatalf("distortions differ at %d", i)
		}
		if pa[i] <= 0 || wa[i] <= 0 || math.IsNaN(pa[i]) || math.IsNaN(wa[i]) {
			t.Fatalf("invalid distortion at %d: %v %v", i, pa[i], wa[i])
		}
	}
}

func TestPanelDistortionHasCertifyOutliers(t *testing.T) {
	w := Generate(Config{Seed: 9, NumSites: 5000})
	d := w.PanelDistortion()
	big := 0
	for _, v := range d {
		if v > 10 {
			big++
		}
	}
	// ~2% of sites carry the Certify boost; allow a broad band.
	frac := float64(big) / float64(len(d))
	if frac < 0.005 || frac > 0.08 {
		t.Errorf("certify-boosted fraction = %.4f, want ~0.02", frac)
	}
}

func TestWorkDistortionFavorsWorkCategories(t *testing.T) {
	w := Generate(Config{Seed: 10, NumSites: 8000})
	d := w.WorkDistortion()
	mean := func(cat Category) float64 {
		var sum float64
		var n int
		for i := range w.Sites {
			if w.Sites[i].Category == cat {
				sum += d[i]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if b, a := mean(Business), mean(Adult); b <= a*10 {
		t.Errorf("business work-distortion %.2f not >> adult %.3f", b, a)
	}
}
