package world

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"toplists/internal/psl"
)

func testWorld(t testing.TB) *World {
	t.Helper()
	return Generate(Config{Seed: 1, NumSites: 3000})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, NumSites: 500})
	b := Generate(Config{Seed: 7, NumSites: 500})
	if !reflect.DeepEqual(a.TrueRank().Names(), b.TrueRank().Names()) {
		t.Fatal("same seed produced different worlds")
	}
	c := Generate(Config{Seed: 8, NumSites: 500})
	if reflect.DeepEqual(a.TrueRank().Names(), c.TrueRank().Names()) {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestIDsAreTrueRanks(t *testing.T) {
	w := testWorld(t)
	for i := 0; i < w.NumSites(); i++ {
		s := w.Site(int32(i))
		if int(s.ID) != i {
			t.Fatalf("site %d has ID %d", i, s.ID)
		}
		if i > 0 && s.Weight > w.Site(int32(i-1)).Weight {
			t.Fatalf("weights not sorted at %d", i)
		}
		rk, ok := w.TrueRank().RankOf(s.Domain)
		if !ok || rk != i+1 {
			t.Fatalf("TrueRank mismatch for %s: %d, %v", s.Domain, rk, ok)
		}
	}
}

func TestDomainsUniqueAndValidRegistrable(t *testing.T) {
	w := testWorld(t)
	l := psl.Default()
	seen := map[string]bool{}
	for i := range w.Sites {
		d := w.Sites[i].Domain
		if seen[d] {
			t.Fatalf("duplicate domain %s", d)
		}
		seen[d] = true
		etld1, ok := l.RegisteredDomain(d)
		if !ok || etld1 != d {
			t.Fatalf("domain %s is not its own registrable domain (-> %s, %v)", d, etld1, ok)
		}
		id, ok := w.ByDomain(d)
		if !ok || id != int32(i) {
			t.Fatalf("ByDomain(%s) = %d, %v", d, id, ok)
		}
	}
}

func TestTopTenNotCloudflare(t *testing.T) {
	w := testWorld(t)
	for i := 0; i < 10; i++ {
		if w.Site(int32(i)).Cloudflare() {
			t.Errorf("top-10 site %d is on Cloudflare", i)
		}
	}
}

func TestCloudflareShareReasonable(t *testing.T) {
	w := testWorld(t)
	cf := len(w.CloudflareSet())
	frac := float64(cf) / float64(w.NumSites())
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("cloudflare share = %.3f, want within [0.10, 0.45]", frac)
	}
}

func TestCountrySharesNormalized(t *testing.T) {
	w := testWorld(t)
	for i := range w.Sites {
		var sum float64
		for _, cs := range w.Sites[i].CountryShare {
			if cs < 0 {
				t.Fatalf("site %d negative country share", i)
			}
			sum += float64(cs)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("site %d country shares sum to %v", i, sum)
		}
	}
}

func TestHomeCountryDominatesForInsularSites(t *testing.T) {
	w := testWorld(t)
	// Japanese sites must on average give Japan the plurality of their
	// audience — the mechanism behind Figure 7's "all lists poor on JP".
	var jpHomeShare, jpSites float64
	for i := range w.Sites {
		s := &w.Sites[i]
		if s.Home == JP {
			jpHomeShare += float64(s.CountryShare[JP])
			jpSites++
		}
	}
	if jpSites == 0 {
		t.Skip("no JP sites at this scale")
	}
	if avg := jpHomeShare / jpSites; avg < 0.6 {
		t.Errorf("JP sites average home share %.2f, want > 0.6", avg)
	}
}

func TestChinaRarelyCloudflare(t *testing.T) {
	w := testWorld(t)
	var cnCF, cn int
	for i := range w.Sites {
		if w.Sites[i].Home == CN {
			cn++
			if w.Sites[i].Cloudflare() {
				cnCF++
			}
		}
	}
	if cn == 0 {
		t.Skip("no CN sites at this scale")
	}
	if frac := float64(cnCF) / float64(cn); frac > 0.05 {
		t.Errorf("CN cloudflare share = %.3f, want < 0.05", frac)
	}
}

func TestAttributeRanges(t *testing.T) {
	w := testWorld(t)
	for i := range w.Sites {
		s := &w.Sites[i]
		checks := []struct {
			name   string
			v      float64
			lo, hi float64
		}{
			{"MobileShare", float64(s.MobileShare), 0.05, 0.95},
			{"PrivateShare", float64(s.PrivateShare), 0, 0.95},
			{"BotShare", float64(s.BotShare), 0.01, 0.95},
			{"SubresMean", float64(s.SubresMean), 1, 400},
			{"EntryShare", float64(s.EntryShare), 0.05, 0.98},
			{"CompletionProb", float64(s.CompletionProb), 0.5, 0.99},
		}
		for _, c := range checks {
			if c.v < c.lo-1e-6 || c.v > c.hi+1e-6 {
				t.Fatalf("site %d %s = %v out of [%v, %v]", i, c.name, c.v, c.lo, c.hi)
			}
		}
		if s.DNSTTL <= 0 {
			t.Fatalf("site %d TTL %d", i, s.DNSTTL)
		}
	}
}

func TestSubdomains(t *testing.T) {
	w := testWorld(t)
	for i := range w.Sites {
		s := &w.Sites[i]
		if len(s.Subdomains) == 0 || s.Subdomains[0] != "" {
			t.Fatalf("site %d: first subdomain must be apex", i)
		}
		if len(s.Subdomains) != len(s.SubWeights) {
			t.Fatalf("site %d: label/weight mismatch", i)
		}
		var sum float32
		for _, wt := range s.SubWeights {
			sum += wt
		}
		if math.Abs(float64(sum)-1) > 1e-4 {
			t.Fatalf("site %d: subdomain weights sum %v", i, sum)
		}
		if s.Hostname(0) != s.Domain {
			t.Fatalf("apex hostname = %q", s.Hostname(0))
		}
		if len(s.Subdomains) > 1 && s.Subdomains[1] == "www" {
			if s.Hostname(1) != "www."+s.Domain {
				t.Fatalf("www hostname = %q", s.Hostname(1))
			}
		}
	}
}

func TestAdultPrivateBrowsing(t *testing.T) {
	w := testWorld(t)
	var adult, other float64
	var na, no int
	for i := range w.Sites {
		s := &w.Sites[i]
		if s.Category == Adult {
			adult += float64(s.PrivateShare)
			na++
		} else {
			other += float64(s.PrivateShare)
			no++
		}
	}
	if na == 0 {
		t.Skip("no adult sites at this scale")
	}
	if adult/float64(na) < 3*(other/float64(no)) {
		t.Errorf("adult private share %.3f not >> other %.3f",
			adult/float64(na), other/float64(no))
	}
}

func TestCategoryTierSkew(t *testing.T) {
	w := Generate(Config{Seed: 3, NumSites: 20000})
	headParked, tailParked := 0, 0
	headN, tailN := 0, 0
	for i := range w.Sites {
		s := &w.Sites[i]
		if int(s.ID) < 2000 {
			headN++
			if s.Category == Parked {
				headParked++
			}
		} else if int(s.ID) >= 10000 {
			tailN++
			if s.Category == Parked {
				tailParked++
			}
		}
	}
	headFrac := float64(headParked) / float64(headN)
	tailFrac := float64(tailParked) / float64(tailN)
	if headFrac >= tailFrac {
		t.Errorf("parked head fraction %.4f >= tail fraction %.4f", headFrac, tailFrac)
	}
}

func TestSiteWeights(t *testing.T) {
	w := testWorld(t)
	for _, c := range AllCountries() {
		for _, p := range AllPlatforms() {
			ws := w.SiteWeights(c, p)
			if len(ws) != w.NumSites() {
				t.Fatal("length")
			}
			var sum float64
			for _, v := range ws {
				if v < 0 {
					t.Fatalf("negative weight in %v/%v", c, p)
				}
				sum += v
			}
			if sum <= 0 {
				t.Fatalf("zero total weight for %v/%v", c, p)
			}
		}
	}
}

func TestInfraNames(t *testing.T) {
	w := testWorld(t)
	if len(w.Infra) < 20 {
		t.Fatalf("infra count %d", len(w.Infra))
	}
	seen := map[string]bool{}
	for _, inf := range w.Infra {
		if seen[inf.FQDN] {
			t.Fatalf("duplicate infra name %s", inf.FQDN)
		}
		seen[inf.FQDN] = true
		if inf.QueryWeight <= 0 || inf.TTL <= 0 {
			t.Fatalf("bad infra %+v", inf)
		}
		if _, clash := w.ByDomain(inf.FQDN); clash {
			t.Fatalf("infra name %s collides with a site", inf.FQDN)
		}
	}
}

func TestOrigin(t *testing.T) {
	w := testWorld(t)
	httpsSeen, httpSeen := false, false
	for i := range w.Sites {
		s := &w.Sites[i]
		o := s.Origin()
		if s.HTTPS {
			httpsSeen = true
			if o != "https://"+s.Domain {
				t.Fatalf("origin %q", o)
			}
		} else {
			httpSeen = true
			if o != "http://"+s.Domain {
				t.Fatalf("origin %q", o)
			}
		}
	}
	if !httpsSeen || !httpSeen {
		t.Error("expected a mix of http and https sites")
	}
}

func TestCountryTableSane(t *testing.T) {
	var clientSum, siteSum float64
	for _, ci := range Countries() {
		clientSum += ci.ClientShare
		siteSum += ci.SiteShare
		if len(ci.TLDs) != len(ci.TLDWts) || len(ci.TLDs) == 0 {
			t.Errorf("%s TLD table malformed", ci.Code)
		}
		if ci.MobileShare <= 0 || ci.MobileShare >= 1 {
			t.Errorf("%s mobile share %v", ci.Code, ci.MobileShare)
		}
	}
	if math.Abs(clientSum-1) > 0.02 {
		t.Errorf("client shares sum to %v", clientSum)
	}
	if math.Abs(siteSum-1) > 0.02 {
		t.Errorf("site shares sum to %v", siteSum)
	}
}

func TestDescribe(t *testing.T) {
	w := testWorld(t)
	if w.Describe() == "" {
		t.Error("empty describe")
	}
}

func BenchmarkGenerate10K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Config{Seed: uint64(i), NumSites: 10000})
	}
}

func TestSectorTLDs(t *testing.T) {
	w := Generate(Config{Seed: 12, NumSites: 20000})
	sector := map[Country]string{
		US: "gov", GB: "gov.uk", CN: "gov.cn", BR: "gov.br", JP: "go.jp",
	}
	checked := 0
	for i := range w.Sites {
		s := &w.Sites[i]
		if s.Category != Government {
			continue
		}
		want, ok := sector[s.Home]
		if !ok {
			continue
		}
		checked++
		if !strings.HasSuffix(s.Domain, "."+want) {
			t.Fatalf("gov site %s homed in %v does not use %s", s.Domain, s.Home, want)
		}
	}
	if checked == 0 {
		t.Skip("no government sites in mapped countries at this scale")
	}
}

func TestLocalTLDsMatchHomeCountry(t *testing.T) {
	w := Generate(Config{Seed: 13, NumSites: 8000})
	// Spot check: sites under .cn / .com.cn must be homed in China.
	for i := range w.Sites {
		s := &w.Sites[i]
		if strings.HasSuffix(s.Domain, ".com.cn") || strings.HasSuffix(s.Domain, ".net.cn") {
			if s.Home != CN {
				t.Fatalf("site %s under a Chinese TLD homed in %v", s.Domain, s.Home)
			}
		}
		if strings.HasSuffix(s.Domain, ".co.jp") || strings.HasSuffix(s.Domain, ".ne.jp") {
			if s.Home != JP {
				t.Fatalf("site %s under a Japanese TLD homed in %v", s.Domain, s.Home)
			}
		}
	}
}
