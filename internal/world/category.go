package world

// Category is a website content category, matching the 22 categories of the
// paper's Table 3 (derived there from Cloudflare's Domain Intelligence API).
type Category uint8

// The website categories.
const (
	Government Category = iota
	News
	Education
	Science
	Community
	Business
	Gaming
	Kids
	Lifestyle
	Arts
	Health
	Blog
	Sports
	Travel
	Shopping
	Cars
	Adult
	Abuse
	Gambling
	Parked
	Technology
	Entertainment
	NumCategories = 22
)

var categoryNames = [NumCategories]string{
	"Government", "News", "Education", "Science", "Community", "Business",
	"Gaming", "Kids", "Lifestyle", "Arts", "Health", "Blog", "Sports",
	"Travel", "Shopping", "Cars", "Adult", "Abuse", "Gambling", "Parked",
	"Technology", "Entertainment",
}

// String implements fmt.Stringer.
func (c Category) String() string { return categoryNames[c] }

// AllCategories lists all categories in order.
func AllCategories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// CategoryInfo holds the static behavioural parameters of a category. These
// are the mechanisms from which every category bias in the evaluation
// emerges; none of the evaluation code reads them directly.
type CategoryInfo struct {
	Name string

	// ShareHead/ShareTorso/ShareTail are the category's unnormalized share
	// of sites in the top ~1%, the next ~10%, and the rest of the
	// popularity distribution. Adult sites concentrate in the head;
	// parked domains and spam concentrate in the tail.
	ShareHead, ShareTorso, ShareTail float64

	// PrivateShare is the fraction of page loads made in a private browsing
	// window, invisible to extension-based panels like Alexa's [15].
	PrivateShare float64
	// BotShare is the fraction of the site's server-side requests issued by
	// non-browser clients (crawlers, spam tooling, API callers). Cloudflare
	// sees these; browser telemetry does not.
	BotShare float64
	// MobileShare is the fraction of human page loads from Android.
	MobileShare float64
	// LinkPropensity scales how often other sites link to this category;
	// it drives the Majestic backlink ranking.
	LinkPropensity float64
	// EnterpriseBlocked is the probability that a corporate network blocks
	// the category at the DNS layer, hiding it from Umbrella's vantage.
	EnterpriseBlocked float64
	// SubresMean is the mean number of subresource requests per page load
	// (news pages are heavy; parked pages are nearly empty).
	SubresMean float64
	// EntryShare is the fraction of page loads landing on the root page
	// (GET /) rather than a deep link.
	EntryShare float64
	// DwellMu is the log-mean of seconds spent on the site per page load.
	DwellMu float64
	// CompletionProb is the probability a page load completes (First
	// Contentful Paint reached), the event CrUX counts.
	CompletionProb float64
	// CFBoost scales Cloudflare adoption for the category.
	CFBoost float64
	// WeightBoost scales per-site true traffic for the category: adult and
	// entertainment sites are traffic-heavy for their count, parked domains
	// carry almost none. This is what keeps popular adult sites above the
	// CrUX privacy threshold (Table 3: CrUX is the only list that accounts
	// for them) while panel-based lists still miss them.
	WeightBoost float64
	// Stickiness scales how strongly visitors return to a site within a
	// day. Sticky categories (communities, games) earn many page loads per
	// visitor; parked pages earn one. This is what separates the raw-count
	// aggregations from the unique-IP aggregations (Section 3.2).
	Stickiness float64
	// PanelAffinity scales how over-represented the category is in the
	// browsing of Alexa-extension users, whose webmaster/SEO-heavy
	// demographic inflates technology and marketing sites — one driver of
	// Alexa's rank-magnitude inflation (Section 5.3).
	PanelAffinity float64
	// WorkAffinity scales how over-represented the category is in
	// workday browsing on corporate networks — Umbrella's vantage. Work
	// browsing is not web popularity, which caps how well a DNS list built
	// from it can rank the open web (Section 5.2).
	WorkAffinity float64
}

var categoryInfos = [NumCategories]CategoryInfo{
	Government: {
		ShareHead: 1.0, ShareTorso: 2.0, ShareTail: 1.5,
		PrivateShare: 0.01, BotShare: 0.15, MobileShare: 0.35,
		LinkPropensity: 12.0, EnterpriseBlocked: 0.0,
		SubresMean: 25, EntryShare: 0.45, DwellMu: 4.0, CompletionProb: 0.95, CFBoost: 0.7, WeightBoost: 0.6, Stickiness: 0.8, PanelAffinity: 0.8, WorkAffinity: 1.5,
	},
	News: {
		ShareHead: 6.0, ShareTorso: 5.0, ShareTail: 2.5,
		PrivateShare: 0.02, BotShare: 0.20, MobileShare: 0.55,
		LinkPropensity: 8.0, EnterpriseBlocked: 0.02,
		SubresMean: 90, EntryShare: 0.35, DwellMu: 4.6, CompletionProb: 0.90, CFBoost: 1.1, WeightBoost: 1.3, Stickiness: 2.2, PanelAffinity: 1.5, WorkAffinity: 1.8,
	},
	Education: {
		ShareHead: 2.0, ShareTorso: 3.0, ShareTail: 2.5,
		PrivateShare: 0.01, BotShare: 0.12, MobileShare: 0.40,
		LinkPropensity: 7.0, EnterpriseBlocked: 0.0,
		SubresMean: 30, EntryShare: 0.40, DwellMu: 5.0, CompletionProb: 0.94, CFBoost: 0.8, WeightBoost: 0.7, Stickiness: 1.2, PanelAffinity: 1.0, WorkAffinity: 1.0,
	},
	Science: {
		ShareHead: 1.0, ShareTorso: 2.0, ShareTail: 2.0,
		PrivateShare: 0.01, BotShare: 0.15, MobileShare: 0.35,
		LinkPropensity: 6.0, EnterpriseBlocked: 0.0,
		SubresMean: 25, EntryShare: 0.35, DwellMu: 4.8, CompletionProb: 0.94, CFBoost: 0.9, WeightBoost: 0.7, Stickiness: 1.0, PanelAffinity: 1.5, WorkAffinity: 1.3,
	},
	Community: {
		ShareHead: 4.0, ShareTorso: 4.0, ShareTail: 4.0,
		PrivateShare: 0.04, BotShare: 0.18, MobileShare: 0.62,
		LinkPropensity: 3.0, EnterpriseBlocked: 0.15,
		SubresMean: 45, EntryShare: 0.30, DwellMu: 5.5, CompletionProb: 0.92, CFBoost: 1.2, WeightBoost: 1.2, Stickiness: 3.5, PanelAffinity: 1.0, WorkAffinity: 0.3,
	},
	Business: {
		ShareHead: 4.0, ShareTorso: 6.0, ShareTail: 8.0,
		PrivateShare: 0.01, BotShare: 0.20, MobileShare: 0.38,
		LinkPropensity: 3.5, EnterpriseBlocked: 0.0,
		SubresMean: 35, EntryShare: 0.55, DwellMu: 3.8, CompletionProb: 0.93, CFBoost: 1.0, WeightBoost: 0.8, Stickiness: 0.8, PanelAffinity: 2.5, WorkAffinity: 3.0,
	},
	Gaming: {
		ShareHead: 4.0, ShareTorso: 4.0, ShareTail: 3.0,
		PrivateShare: 0.03, BotShare: 0.15, MobileShare: 0.70,
		LinkPropensity: 2.5, EnterpriseBlocked: 0.40,
		SubresMean: 55, EntryShare: 0.40, DwellMu: 6.0, CompletionProb: 0.90, CFBoost: 1.3, WeightBoost: 1.2, Stickiness: 3.0, PanelAffinity: 1.0, WorkAffinity: 0.1,
	},
	Kids: {
		ShareHead: 1.0, ShareTorso: 1.5, ShareTail: 1.0,
		PrivateShare: 0.01, BotShare: 0.08, MobileShare: 0.72,
		LinkPropensity: 2.0, EnterpriseBlocked: 0.05,
		SubresMean: 40, EntryShare: 0.50, DwellMu: 5.2, CompletionProb: 0.92, CFBoost: 1.0, WeightBoost: 0.8, Stickiness: 1.5, PanelAffinity: 0.6, WorkAffinity: 0.1,
	},
	Lifestyle: {
		ShareHead: 3.0, ShareTorso: 4.0, ShareTail: 5.0,
		PrivateShare: 0.02, BotShare: 0.15, MobileShare: 0.68,
		LinkPropensity: 2.0, EnterpriseBlocked: 0.05,
		SubresMean: 50, EntryShare: 0.30, DwellMu: 4.5, CompletionProb: 0.91, CFBoost: 1.1, WeightBoost: 1.0, Stickiness: 1.2, PanelAffinity: 1.0, WorkAffinity: 0.5,
	},
	Arts: {
		ShareHead: 2.0, ShareTorso: 3.0, ShareTail: 3.5,
		PrivateShare: 0.02, BotShare: 0.12, MobileShare: 0.60,
		LinkPropensity: 2.5, EnterpriseBlocked: 0.02,
		SubresMean: 45, EntryShare: 0.35, DwellMu: 4.7, CompletionProb: 0.92, CFBoost: 1.0, WeightBoost: 0.9, Stickiness: 1.0, PanelAffinity: 0.9, WorkAffinity: 0.5,
	},
	Health: {
		ShareHead: 2.0, ShareTorso: 3.0, ShareTail: 3.0,
		PrivateShare: 0.06, BotShare: 0.12, MobileShare: 0.58,
		LinkPropensity: 3.0, EnterpriseBlocked: 0.02,
		SubresMean: 35, EntryShare: 0.30, DwellMu: 4.2, CompletionProb: 0.93, CFBoost: 1.0, WeightBoost: 0.9, Stickiness: 0.9, PanelAffinity: 0.9, WorkAffinity: 0.8,
	},
	Blog: {
		ShareHead: 2.0, ShareTorso: 5.0, ShareTail: 14.0,
		PrivateShare: 0.02, BotShare: 0.25, MobileShare: 0.55,
		LinkPropensity: 1.2, EnterpriseBlocked: 0.05,
		SubresMean: 20, EntryShare: 0.25, DwellMu: 4.0, CompletionProb: 0.92, CFBoost: 1.3, WeightBoost: 0.5, Stickiness: 1.0, PanelAffinity: 3.0, WorkAffinity: 0.8,
	},
	Sports: {
		ShareHead: 3.0, ShareTorso: 3.0, ShareTail: 2.5,
		PrivateShare: 0.02, BotShare: 0.15, MobileShare: 0.66,
		LinkPropensity: 3.0, EnterpriseBlocked: 0.10,
		SubresMean: 65, EntryShare: 0.45, DwellMu: 4.8, CompletionProb: 0.90, CFBoost: 1.1, WeightBoost: 1.1, Stickiness: 2.0, PanelAffinity: 1.0, WorkAffinity: 0.5,
	},
	Travel: {
		ShareHead: 2.0, ShareTorso: 3.0, ShareTail: 3.0,
		PrivateShare: 0.02, BotShare: 0.25, MobileShare: 0.55,
		LinkPropensity: 4.5, EnterpriseBlocked: 0.02,
		SubresMean: 55, EntryShare: 0.50, DwellMu: 4.9, CompletionProb: 0.91, CFBoost: 1.0, WeightBoost: 0.9, Stickiness: 1.0, PanelAffinity: 1.0, WorkAffinity: 1.2,
	},
	Shopping: {
		ShareHead: 7.0, ShareTorso: 6.0, ShareTail: 7.0,
		PrivateShare: 0.03, BotShare: 0.30, MobileShare: 0.64,
		LinkPropensity: 2.0, EnterpriseBlocked: 0.05,
		SubresMean: 70, EntryShare: 0.40, DwellMu: 5.0, CompletionProb: 0.91, CFBoost: 1.2, WeightBoost: 1.1, Stickiness: 1.5, PanelAffinity: 1.2, WorkAffinity: 0.6,
	},
	Cars: {
		ShareHead: 1.0, ShareTorso: 1.5, ShareTail: 1.5,
		PrivateShare: 0.02, BotShare: 0.15, MobileShare: 0.52,
		LinkPropensity: 1.8, EnterpriseBlocked: 0.02,
		SubresMean: 50, EntryShare: 0.45, DwellMu: 4.4, CompletionProb: 0.92, CFBoost: 1.0, WeightBoost: 0.8, Stickiness: 1.0, PanelAffinity: 0.9, WorkAffinity: 0.6,
	},
	Adult: {
		ShareHead: 6.0, ShareTorso: 4.0, ShareTail: 4.0,
		PrivateShare: 0.45, BotShare: 0.25, MobileShare: 0.66,
		LinkPropensity: 0.25, EnterpriseBlocked: 0.92,
		SubresMean: 60, EntryShare: 0.55, DwellMu: 5.4, CompletionProb: 0.90, CFBoost: 1.2, WeightBoost: 2.5, Stickiness: 2.2, PanelAffinity: 0.5, WorkAffinity: 0.02,
	},
	Abuse: {
		ShareHead: 0.3, ShareTorso: 1.0, ShareTail: 5.0,
		PrivateShare: 0.10, BotShare: 0.85, MobileShare: 0.50,
		LinkPropensity: 0.15, EnterpriseBlocked: 0.75,
		SubresMean: 8, EntryShare: 0.70, DwellMu: 2.0, CompletionProb: 0.70, CFBoost: 0.8, WeightBoost: 0.25, Stickiness: 0.2, PanelAffinity: 0.4, WorkAffinity: 0.3,
	},
	Gambling: {
		ShareHead: 1.5, ShareTorso: 1.5, ShareTail: 2.0,
		PrivateShare: 0.35, BotShare: 0.25, MobileShare: 0.62,
		LinkPropensity: 0.25, EnterpriseBlocked: 0.90,
		SubresMean: 45, EntryShare: 0.55, DwellMu: 5.8, CompletionProb: 0.90, CFBoost: 1.1, WeightBoost: 1.4, Stickiness: 2.5, PanelAffinity: 0.5, WorkAffinity: 0.05,
	},
	Parked: {
		ShareHead: 0.05, ShareTorso: 0.5, ShareTail: 10.0,
		PrivateShare: 0.02, BotShare: 0.60, MobileShare: 0.50,
		LinkPropensity: 0.05, EnterpriseBlocked: 0.30,
		SubresMean: 3, EntryShare: 0.95, DwellMu: 1.2, CompletionProb: 0.85, CFBoost: 0.6, WeightBoost: 0.05, Stickiness: 0.15, PanelAffinity: 0.5, WorkAffinity: 1.0,
	},
	Technology: {
		ShareHead: 7.0, ShareTorso: 6.0, ShareTail: 6.0,
		PrivateShare: 0.02, BotShare: 0.35, MobileShare: 0.42,
		LinkPropensity: 4.0, EnterpriseBlocked: 0.0,
		SubresMean: 40, EntryShare: 0.35, DwellMu: 4.6, CompletionProb: 0.94, CFBoost: 1.4, WeightBoost: 1.3, Stickiness: 1.5, PanelAffinity: 3.5, WorkAffinity: 2.5,
	},
	Entertainment: {
		ShareHead: 6.0, ShareTorso: 5.0, ShareTail: 4.0,
		PrivateShare: 0.05, BotShare: 0.15, MobileShare: 0.70,
		LinkPropensity: 3.0, EnterpriseBlocked: 0.15,
		SubresMean: 60, EntryShare: 0.40, DwellMu: 6.2, CompletionProb: 0.90, CFBoost: 1.2, WeightBoost: 1.4, Stickiness: 2.8, PanelAffinity: 1.0, WorkAffinity: 0.25,
	},
}

// Info returns the category's static parameters.
func (c Category) Info() CategoryInfo {
	info := categoryInfos[c]
	info.Name = categoryNames[c]
	return info
}
