package world

import (
	"strconv"
	"strings"

	"toplists/internal/simrand"
)

// nameGen mints unique, plausible registrable domain names. Names are
// syllable-based pseudo-words under a TLD chosen from the site's home
// country (or a sector suffix for government/education sites), so that PSL
// handling is exercised on realistic multi-label suffixes.
type nameGen struct {
	src  *simrand.Source
	used map[string]struct{}
}

func newNameGen(src *simrand.Source) *nameGen {
	return &nameGen{src: src, used: make(map[string]struct{})}
}

var (
	onsets  = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "ch", "sh", "st", "tr", "pl", "br"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
	codas   = []string{"", "", "", "n", "r", "s", "x", "l", "m", "k"}
	affixes = []string{"", "", "", "hub", "zone", "base", "ly", "ify", "spot", "lab", "den", "go", "now", "web"}
)

// sectorTLD returns a sector-specific suffix for categories that use one in
// the given country, or "" if the site should use an ordinary TLD.
func sectorTLD(cat Category, home Country) string {
	switch cat {
	case Government:
		switch home {
		case US:
			return "gov"
		case GB:
			return "gov.uk"
		case CN:
			return "gov.cn"
		case BR:
			return "gov.br"
		case IN:
			return "gov.in"
		case JP:
			return "go.jp"
		case ID:
			return "go.id"
		case NG:
			return "gov.ng"
		case EG:
			return "gov.eg"
		case ZA:
			return "gov.za"
		default:
			return ""
		}
	case Education:
		switch home {
		case US:
			return "edu"
		case GB:
			return "ac.uk"
		case CN:
			return "edu.cn"
		case BR:
			return "edu.br"
		case JP:
			return "ac.jp"
		case ID:
			return "ac.id"
		case NG:
			return "edu.ng"
		case EG:
			return "edu.eg"
		case ZA:
			return "ac.za"
		default:
			return ""
		}
	}
	return ""
}

func (g *nameGen) generate(siteSrc *simrand.Source, cat Category, home Country) string {
	tld := sectorTLD(cat, home)
	if tld == "" {
		ci := home.Info()
		tld = pick(siteSrc, ci.TLDs, ci.TLDWts)
	}
	for attempt := 0; ; attempt++ {
		var b strings.Builder
		syllables := 2 + siteSrc.Intn(2)
		for i := 0; i < syllables; i++ {
			b.WriteString(onsets[siteSrc.Intn(len(onsets))])
			b.WriteString(vowels[siteSrc.Intn(len(vowels))])
			if i == syllables-1 {
				b.WriteString(codas[siteSrc.Intn(len(codas))])
			}
		}
		b.WriteString(affixes[siteSrc.Intn(len(affixes))])
		if attempt > 2 {
			// Very unlikely at realistic scales; guarantee termination.
			b.WriteString(strconv.Itoa(siteSrc.Intn(100000)))
		}
		name := b.String() + "." + tld
		if _, dup := g.used[name]; dup {
			continue
		}
		g.used[name] = struct{}{}
		return name
	}
}

func pick(src *simrand.Source, items []string, weights []float64) string {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return items[i]
		}
	}
	return items[len(items)-1]
}

// generateInfra mints the non-website infrastructure FQDNs. Their DNS query
// weights are heavy-tailed and large: every device on a network resolves
// them many times a day, which is why they crowd the head of DNS-derived
// rankings.
func generateInfra(src *simrand.Source, n int) []InfraName {
	vendors := []string{"osvendor", "phonemaker", "adnet", "pushsvc", "antivirusco", "smarttvco", "routerco", "cloudapi"}
	kinds := []string{"telemetry", "update", "time", "push", "beacon", "api", "cfg", "metrics", "events", "ocsp"}
	out := make([]InfraName, n)
	for i := 0; i < n; i++ {
		s := src.At(i)
		vendor := vendors[s.Intn(len(vendors))]
		kind := kinds[s.Intn(len(kinds))]
		fqdn := kind + strconv.Itoa(i) + "." + vendor + ".com"
		// Weight ~ Zipf by index with noise; the heaviest infra names out-query
		// any website by a wide margin.
		w := 40.0 / float64(i+1)
		out[i] = InfraName{
			FQDN:        fqdn,
			QueryWeight: w * s.LogNormal(0, 0.5),
			TTL:         []int32{30, 60, 300}[s.Intn(3)],
		}
	}
	return out
}
