package world

import "sort"

// sortSlice sorts sites with the given less function over pointers, avoiding
// repeated large struct copies in the comparator.
func sortSlice(sites []Site, less func(a, b *Site) bool) {
	sort.Slice(sites, func(i, j int) bool {
		return less(&sites[i], &sites[j])
	})
}
