package world

import "fmt"

// Backend identifies a CDN edge backend a site may be served through. The
// zero value means the site is origin-only. Cdnflare is the Cloudflare-style
// backend of the paper; the edgecast-like and akamai-like backends model
// competitors with distinct header signatures and a coverage skew of their
// own (by category, country, and popularity tier), so CDN-visible metrics
// can be studied under controllable coverage bias.
type Backend uint8

// The backends. BackendNone is "no CDN" (origin-served), and the remaining
// values are the deployable edge backends in deployment order: a world with
// Config.Backends = n serves through the first n of them.
const (
	BackendNone     Backend = iota
	BackendCdnflare         // the Cloudflare-style edge of the paper
	BackendEdgecast         // an Edgecast-like competitor
	BackendAkamai           // an Akamai-like competitor
	// NumBackends is the count of deployable edge backends.
	NumBackends = 3
)

// String implements fmt.Stringer. The names double as stable API slugs.
func (b Backend) String() string {
	switch b {
	case BackendCdnflare:
		return "cdnflare"
	case BackendEdgecast:
		return "edgecast"
	case BackendAkamai:
		return "akamai"
	default:
		return "none"
	}
}

// RayHeader is the backend's per-request trace header, the signature the
// prober classifies on. Cdnflare's is exactly the cf-ray header the paper's
// filtering step keys on.
func (b Backend) RayHeader() string {
	switch b {
	case BackendCdnflare:
		return "Cf-Ray"
	case BackendEdgecast:
		return "X-Ec-Ray"
	case BackendAkamai:
		return "X-Ak-Ray"
	default:
		return ""
	}
}

// Banner is the Server response header the backend's edge stamps.
func (b Backend) Banner() string {
	switch b {
	case BackendCdnflare:
		return "cloudflare"
	case BackendEdgecast:
		return "ECAcc (sim)"
	case BackendAkamai:
		return "AkamaiGHost"
	default:
		return ""
	}
}

// BackendByName resolves a backend slug (as produced by String).
func BackendByName(name string) (Backend, bool) {
	for b := BackendCdnflare; b <= BackendAkamai; b++ {
		if b.String() == name {
			return b, true
		}
	}
	return BackendNone, false
}

// DeployedBackends returns the first n deployable backends in deployment
// order (cdnflare first). n is clamped to [1, NumBackends].
func DeployedBackends(n int) []Backend {
	if n < 1 {
		n = 1
	}
	if n > NumBackends {
		n = NumBackends
	}
	out := make([]Backend, n)
	for i := range out {
		out[i] = BackendCdnflare + Backend(i)
	}
	return out
}

// categoryBoost scales a competitor backend's adoption probability by site
// category: the edgecast-like backend follows the same commercial segments
// Cloudflare over-serves, while the akamai-like backend over-indexes on
// heavy-traffic categories (video, news, shopping — the classic enterprise
// CDN book of business).
func (b Backend) categoryBoost(cat CategoryInfo) float64 {
	switch b {
	case BackendEdgecast:
		return 0.6 + 0.4*cat.CFBoost
	case BackendAkamai:
		return 0.4 + 0.5*cat.WeightBoost
	default:
		return 1
	}
}

// countryBoost scales a competitor backend's adoption probability by the
// site's home country: edgecast-like follows open Western markets where
// Cloudflare is also strong, akamai-like follows enterprise density (and so
// keeps meaningful coverage in Japan, where Cloudflare adoption is weak).
func (b Backend) countryBoost(ci CountryInfo) float64 {
	switch b {
	case BackendEdgecast:
		return 0.3 + 2.5*ci.CFAdoption*ci.Openness
	case BackendAkamai:
		return 0.4 + 4*ci.EnterpriseShare
	default:
		return 1
	}
}

// Vantage is one measurement vantage point: a country it observes from and
// a per-client-country reachability profile. A pipeline measuring from the
// vantage sees a page load from a client in country c with probability
// Reach[c] (decided by a deterministic content-keyed hash, so visibility is
// independent of worker scheduling); LatencyMS is the modeled RTT bias used
// for reporting.
type Vantage struct {
	Name    string
	Country Country
	Reach   [NumCountries]float64
	// LatencyMS[c] is the modeled round-trip latency from clients in
	// country c to this vantage, in milliseconds.
	LatencyMS [NumCountries]float64
}

// Transparent reports whether the vantage sees every client country fully
// (Reach all 1) — the single global vantage of the original model.
func (v *Vantage) Transparent() bool {
	for _, r := range v.Reach {
		if r < 1 {
			return false
		}
	}
	return true
}

// GlobalVantage is the transparent vantage the original single-edge model
// measured from: it observes every client everywhere with no loss.
func GlobalVantage() Vantage {
	v := Vantage{Name: "global", Country: US}
	for c := range v.Reach {
		v.Reach[c] = 1
		v.LatencyMS[c] = 25
	}
	return v
}

// vantagePlacements is the fixed order additional vantages are placed in:
// a deliberate geographic spread (Americas, Europe, Asia, Africa) rather
// than a pure client-share ordering, so small vantage counts already span
// dissimilar reachability profiles.
var vantagePlacements = [11]struct {
	name    string
	country Country
}{
	{"us-east", US},
	{"eu-central", DE},
	{"ap-south", IN},
	{"ap-northeast", JP},
	{"sa-east", BR},
	{"cn-north", CN},
	{"eu-west", GB},
	{"ap-southeast", ID},
	{"af-west", NG},
	{"me-north", EG},
	{"af-south", ZA},
}

// MaxVantages is the largest vantage count DefaultVantages can place.
const MaxVantages = 1 + len(vantagePlacements)

// regionalVantage builds a placed vantage: full reach of its own country,
// and cross-border reach shaped by both ends' network openness. A vantage
// in a closed country (cn-north) barely sees foreign clients, and clients
// in closed countries barely reach foreign vantages — the single-vantage
// blind spots the multi-vantage analysis measures.
func regionalVantage(name string, home Country) Vantage {
	v := Vantage{Name: name, Country: home}
	hi := home.Info()
	for c := 0; c < NumCountries; c++ {
		if Country(c) == home {
			v.Reach[c] = 1
			v.LatencyMS[c] = 15
			continue
		}
		ci := countryInfos[c]
		r := 0.2 + 0.65*ci.Openness*hi.Openness
		if r > 0.92 {
			r = 0.92
		}
		v.Reach[c] = r
		v.LatencyMS[c] = 40 + 220*(1-r)
	}
	return v
}

// DefaultVantages returns the vantage set for a study with n vantages.
// n <= 1 yields the single transparent global vantage (the original
// model, byte-identical by construction); larger n keeps the global
// vantage first and adds regional vantages in placement order.
func DefaultVantages(n int) []Vantage {
	if n < 1 {
		n = 1
	}
	if n > MaxVantages {
		n = MaxVantages
	}
	out := make([]Vantage, 0, n)
	out = append(out, GlobalVantage())
	for i := 0; len(out) < n; i++ {
		p := vantagePlacements[i]
		out = append(out, regionalVantage(p.name, p.country))
	}
	return out
}

// Validate checks a vantage's fields, reporting the first problem.
func (v *Vantage) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("world: vantage has empty name")
	}
	if int(v.Country) >= NumCountries {
		return fmt.Errorf("world: vantage %q: country %d out of range", v.Name, v.Country)
	}
	for c, r := range v.Reach {
		if r < 0 || r > 1 {
			return fmt.Errorf("world: vantage %q: reach[%s] = %v outside [0, 1]", v.Name, Country(c), r)
		}
	}
	for c, l := range v.LatencyMS {
		if l < 0 {
			return fmt.Errorf("world: vantage %q: latency[%s] = %v negative", v.Name, Country(c), l)
		}
	}
	return nil
}
