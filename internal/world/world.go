// Package world generates the synthetic web universe the study measures.
//
// A World is the ground truth that the paper did not have: a population of
// websites with known true popularity, category, country affinity, platform
// skew, and serving infrastructure. Top-list providers and the Cloudflare
// pipeline each observe the world through their own (biased) vantage point;
// the evaluation then measures how well each reconstructed list matches
// server-side truth, exactly as the paper does against Cloudflare logs.
package world

import (
	"fmt"
	"math"

	"toplists/internal/names"
	"toplists/internal/rank"
	"toplists/internal/simrand"
)

// Config parameterizes world generation.
type Config struct {
	// Seed drives all randomness; equal configs produce identical worlds.
	Seed uint64
	// NumSites is the number of websites in the universe.
	NumSites int
	// ZipfS is the popularity Zipf exponent (default 1.05).
	ZipfS float64
	// PopNoise is the log-sigma of multiplicative popularity noise
	// (default 0.4), which makes true rank differ from generation order.
	PopNoise float64
	// HTTPSShare is the fraction of sites served over HTTPS (default 0.93).
	HTTPSShare float64
	// NonPublicShare is the fraction of sites not linked from the public
	// web (robots-excluded); Chrome telemetry omits them (default 0.03).
	NonPublicShare float64
	// MultiCDNShare is the fraction of Cloudflare sites also using another
	// CDN (default 0.01, "rare" per Section 4.5).
	MultiCDNShare float64
	// CFBase is the base Cloudflare adoption probability before category,
	// country, and tier multipliers (default 0.30).
	CFBase float64
	// Backends is how many CDN edge backends are deployed (1..NumBackends,
	// default 1). The first backend is always cdnflare; a world with one
	// backend is the original single-edge model, byte-identical to worlds
	// generated before competitor backends existed.
	Backends int
	// ExtraCDNBase is the base adoption probability of each competitor
	// backend (default 0.12), skewed per backend by category, country, and
	// tier. Only consulted when Backends > 1.
	ExtraCDNBase float64
	// Vantages is the set of measurement vantage points (default: the
	// single transparent global vantage). Vantage 0 must be the primary
	// (transparent) vantage for the default pipeline to stay byte-identical.
	Vantages []Vantage
	// InfraNames is the number of non-website infrastructure FQDNs (OS
	// telemetry, NTP, update servers) that dominate DNS vantage points.
	// Default max(20, NumSites/50).
	InfraNames int
	// Ablate disables selected mechanisms for ablation studies.
	Ablate Ablations
}

// Validate reports the first invalid configuration field as an explicit
// error. Zero values are valid (they take defaults); out-of-range values
// are rejected rather than silently clamped.
func (c Config) Validate() error {
	if c.NumSites < 0 {
		return fmt.Errorf("world: NumSites %d negative", c.NumSites)
	}
	if c.InfraNames < 0 {
		return fmt.Errorf("world: InfraNames %d negative", c.InfraNames)
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("world: ZipfS %v negative", c.ZipfS)
	}
	if c.PopNoise < 0 {
		return fmt.Errorf("world: PopNoise %v negative", c.PopNoise)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"HTTPSShare", c.HTTPSShare},
		{"NonPublicShare", c.NonPublicShare},
		{"MultiCDNShare", c.MultiCDNShare},
		{"CFBase", c.CFBase},
		{"ExtraCDNBase", c.ExtraCDNBase},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("world: %s %v outside [0, 1]", f.name, f.v)
		}
	}
	if c.Backends < 0 || c.Backends > NumBackends {
		return fmt.Errorf("world: Backends %d outside [0, %d]", c.Backends, NumBackends)
	}
	seen := make(map[string]bool, len(c.Vantages))
	for i := range c.Vantages {
		v := &c.Vantages[i]
		if err := v.Validate(); err != nil {
			return err
		}
		if seen[v.Name] {
			return fmt.Errorf("world: duplicate vantage name %q", v.Name)
		}
		seen[v.Name] = true
	}
	if len(c.Vantages) > 0 && !c.Vantages[0].Transparent() {
		return fmt.Errorf("world: vantage 0 (%q) must be transparent (full reach); regional vantages follow it", c.Vantages[0].Name)
	}
	return nil
}

// Ablations switches individual world mechanisms off so their effect on
// the study's findings can be measured in isolation.
type Ablations struct {
	// NoPrivateBrowsing zeroes every site's private-mode share: extension
	// panels and Chrome telemetry then see all human browsing.
	NoPrivateBrowsing bool
	// NoOpenness removes the cross-border consumption asymmetry (Great
	// Firewall, language barriers): clients everywhere browse foreign
	// sites in proportion to global popularity.
	NoOpenness bool
	// NoWeightBoost removes per-category traffic multipliers: a site's
	// traffic depends only on its Zipf rank.
	NoWeightBoost bool
}

// withDefaults fills zero fields with defaults.
func (c Config) withDefaults() Config {
	if c.NumSites <= 0 {
		c.NumSites = 10_000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.05
	}
	if c.PopNoise == 0 {
		c.PopNoise = 0.4
	}
	if c.HTTPSShare == 0 {
		c.HTTPSShare = 0.93
	}
	if c.NonPublicShare == 0 {
		c.NonPublicShare = 0.03
	}
	if c.MultiCDNShare == 0 {
		c.MultiCDNShare = 0.01
	}
	if c.CFBase == 0 {
		c.CFBase = 0.30
	}
	if c.Backends <= 0 {
		c.Backends = 1
	}
	if c.ExtraCDNBase == 0 {
		c.ExtraCDNBase = 0.12
	}
	if len(c.Vantages) == 0 {
		c.Vantages = DefaultVantages(1)
	}
	if c.InfraNames == 0 {
		c.InfraNames = c.NumSites / 50
		if c.InfraNames < 20 {
			c.InfraNames = 20
		}
	}
	return c
}

// Site is one website of the universe. Fields are ground truth; no observer
// sees them directly.
type Site struct {
	// ID equals the site's 0-based true global popularity rank.
	ID     int32
	Domain string
	HTTPS  bool

	Category Category
	Home     Country

	// Weight is the site's true global popularity weight (unnormalized
	// expected page-load share).
	Weight float64
	// CountryShare is the distribution of the site's audience over
	// countries (sums to 1).
	CountryShare [NumCountries]float32

	// CDN is the backend the site's traffic is served through
	// (BackendNone = origin only). AltCDN names the secondary backend of a
	// multi-CDN site; it may name a backend beyond the world's deployed
	// count — "also on some other CDN" — in which case only the primary
	// serves an observable edge.
	CDN       Backend
	AltCDN    Backend
	NonPublic bool

	// Behavioural parameters, drawn around category means.
	// Stickiness drives within-day revisits (page loads per visitor).
	Stickiness     float32
	MobileShare    float32
	PrivateShare   float32
	BotShare       float32
	SubresMean     float32
	EntryShare     float32
	CompletionProb float32
	DwellMu        float32
	DwellSigma     float32

	// DNSTTL is the TTL (seconds) on the site's DNS records, which drives
	// resolver-side query suppression.
	DNSTTL int32

	// Subdomains lists the site's hostname labels beyond the registrable
	// domain; index 0 is always "" (the apex). SubWeights gives the share
	// of web traffic using each hostname.
	Subdomains []string
	SubWeights []float32
}

// Cloudflare reports whether the site's primary backend is the
// Cloudflare-style edge — the population the paper's cf-ray filter targets.
func (s *Site) Cloudflare() bool { return s.CDN == BackendCdnflare }

// MultiCDN reports whether the site serves through a secondary CDN besides
// its primary ("rare" per Section 4.5).
func (s *Site) MultiCDN() bool { return s.AltCDN != BackendNone }

// OnBackend reports whether the site serves any traffic through backend b
// (as primary or secondary).
func (s *Site) OnBackend(b Backend) bool {
	return b != BackendNone && (s.CDN == b || s.AltCDN == b)
}

// Hostname returns the FQDN for subdomain index i.
func (s *Site) Hostname(i int) string {
	if s.Subdomains[i] == "" {
		return s.Domain
	}
	return s.Subdomains[i] + "." + s.Domain
}

// Origin returns the site's canonical web origin.
func (s *Site) Origin() string {
	if s.HTTPS {
		return "https://" + s.Domain
	}
	return "http://" + s.Domain
}

// InfraName is a non-website FQDN with heavy DNS query volume: OS telemetry
// endpoints, NTP pools, software-update and push services. They are what
// makes DNS-derived rankings (Umbrella) diverge from website popularity.
type InfraName struct {
	FQDN string
	// QueryWeight is the relative per-device DNS query rate.
	QueryWeight float64
	TTL         int32
}

// World is the generated universe.
type World struct {
	Cfg   Config
	Sites []Site
	Infra []InfraName

	byDomain map[string]int32
	trueRank *rank.Ranking

	// tab is the study's name interner. Site domains are interned first,
	// in true-rank order, establishing the invariant that a site's domain
	// has interner ID equal to the site ID; every observer and every
	// derived ranking of the study shares this table.
	tab *names.Table
}

// Generate builds a world from the config. Generation is deterministic in
// Config (including Seed). Generate panics on a config Config.Validate
// rejects; zero fields are valid and take defaults.
func Generate(cfg Config) *World {
	// Out-of-range values are programmer errors at this layer: callers
	// holding user input validate with Config.Validate first and report
	// the error themselves; Generate refuses to silently clamp.
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	root := simrand.New(cfg.Seed).Derive("world")
	w := &World{
		Cfg:      cfg,
		Sites:    make([]Site, cfg.NumSites),
		byDomain: make(map[string]int32, cfg.NumSites),
	}

	catAlias := buildCategoryTierAliases()
	siteShare := make([]float64, NumCountries)
	for i, ci := range countryInfos {
		siteShare[i] = ci.SiteShare
	}
	homeAlias := simrand.NewAlias(siteShare)

	nameGen := newNameGen(root.Derive("names"))
	gen := root.Derive("sites")
	n := cfg.NumSites
	for i := 0; i < n; i++ {
		src := gen.At(i)
		s := &w.Sites[i]
		tier := tierOf(i, n)
		s.Category = Category(catAlias[tier].Draw(src))
		s.Home = Country(homeAlias.Draw(src))
		ci := s.Home.Info()
		cat := s.Category.Info()

		s.Domain = nameGen.generate(src, s.Category, s.Home)
		s.HTTPS = src.Bernoulli(cfg.HTTPSShare)
		boost := cat.WeightBoost
		if cfg.Ablate.NoWeightBoost {
			boost = 1
		}
		s.Weight = math.Pow(float64(i+1), -cfg.ZipfS) * src.LogNormal(0, cfg.PopNoise) * boost

		headness := 1 / (1 + float64(i)/(0.01*float64(n)+1))
		g := (1 - ci.Localness) * (0.45 + 0.55*headness) * src.LogNormal(0, 0.25)
		g = clamp(g, 0.02, 0.95)
		var sum float64
		for c := 0; c < NumCountries; c++ {
			wc := g * countryInfos[c].ClientShare
			if Country(c) == s.Home {
				wc += 1 - g
			}
			s.CountryShare[c] = float32(wc)
			sum += wc
		}
		for c := 0; c < NumCountries; c++ {
			s.CountryShare[c] = float32(float64(s.CountryShare[c]) / sum)
		}

		// The two adoption draws below predate the multi-backend model and
		// must stay in this exact order on the per-site stream: every later
		// field of the site is drawn from the same stream, so inserting,
		// removing, or reordering draws here would shift the whole universe.
		// Competitor-backend assignment draws from a separate derived stream
		// after sorting (below) for the same reason.
		pCF := cfg.CFBase * cat.CFBoost * ci.CFAdoption * tierCFFactor(tier)
		if src.Bernoulli(clamp(pCF, 0, 0.95)) {
			s.CDN = BackendCdnflare
			if src.Bernoulli(cfg.MultiCDNShare) {
				s.AltCDN = BackendEdgecast
			}
		}
		pNonPub := cfg.NonPublicShare
		if tier == tierHead {
			pNonPub *= 0.15
		}
		s.NonPublic = src.Bernoulli(pNonPub)

		s.Stickiness = float32(clamp(cat.Stickiness*src.LogNormal(0, 0.8), 0.05, 40))
		s.MobileShare = float32(clamp(cat.MobileShare+0.10*src.NormFloat64(), 0.05, 0.95))
		s.PrivateShare = float32(clamp(cat.PrivateShare*src.LogNormal(0, 0.25), 0, 0.95))
		if cfg.Ablate.NoPrivateBrowsing {
			s.PrivateShare = 0
		}
		s.BotShare = float32(clamp(cat.BotShare*src.LogNormal(0, 0.3), 0.01, 0.95))
		s.SubresMean = float32(clamp(cat.SubresMean*src.LogNormal(0, 0.9), 1, 400))
		s.EntryShare = float32(clamp(cat.EntryShare+0.18*src.NormFloat64(), 0.05, 0.98))
		s.CompletionProb = float32(clamp(cat.CompletionProb+0.04*src.NormFloat64(), 0.5, 0.99))
		s.DwellMu = float32(cat.DwellMu + 0.3*src.NormFloat64())
		s.DwellSigma = float32(0.8 + 0.3*src.Float64())
		s.DNSTTL = drawTTL(src)
		s.Subdomains, s.SubWeights = drawSubdomains(src, headness)
	}

	// Sort by true weight descending; re-assign IDs so ID == true rank - 1.
	// Interning the domains in this order pins interner ID == site ID.
	sortSitesByWeight(w.Sites)
	w.tab = names.NewTable()
	idsInOrder := make([]names.ID, n)
	for i := range w.Sites {
		w.Sites[i].ID = int32(i)
		w.byDomain[w.Sites[i].Domain] = int32(i)
		idsInOrder[i] = w.tab.Intern(w.Sites[i].Domain)
	}
	w.trueRank = rank.MustFromIDs(w.tab, idsInOrder)

	// None of the global top ten sites use Cloudflare (Section 4.5).
	for i := 0; i < 10 && i < n; i++ {
		if w.Sites[i].CDN == BackendCdnflare {
			w.Sites[i].CDN = BackendNone
			w.Sites[i].AltCDN = BackendNone
		}
	}

	// Competitor backends, when deployed, are assigned from their own
	// derived stream keyed by final (true-rank) site index, so a
	// single-backend world never consumes these draws and stays
	// byte-identical to worlds generated before competitors existed.
	if cfg.Backends > 1 {
		deployed := DeployedBackends(cfg.Backends)
		extra := root.Derive("cdn-extra")
		for i := range w.Sites {
			s := &w.Sites[i]
			src := extra.At(i)
			if s.CDN == BackendCdnflare {
				// Multi-CDN sites pair with a competitor; with three or more
				// backends deployed the pairing splits between them.
				if s.AltCDN != BackendNone && cfg.Backends > 2 && src.Bernoulli(0.5) {
					s.AltCDN = BackendAkamai
				}
				continue
			}
			cat := s.Category.Info()
			ci := s.Home.Info()
			tf := tierCFFactor(tierOf(i, n))
			for _, b := range deployed[1:] {
				p := cfg.ExtraCDNBase * b.categoryBoost(cat) * b.countryBoost(ci) * tf
				if src.Bernoulli(clamp(p, 0, 0.95)) {
					s.CDN = b
					break
				}
			}
		}
	}

	w.Infra = generateInfra(root.Derive("infra"), cfg.InfraNames)
	return w
}

type tier uint8

const (
	tierHead tier = iota
	tierTorso
	tierTail
	numTiers
)

func tierOf(i, n int) tier {
	switch {
	case i < n/100+1:
		return tierHead
	case i < n/10+1:
		return tierTorso
	default:
		return tierTail
	}
}

func tierCFFactor(t tier) float64 {
	switch t {
	case tierHead:
		return 1.0
	case tierTorso:
		return 1.1
	default:
		return 0.8
	}
}

func buildCategoryTierAliases() [numTiers]*simrand.Alias {
	var out [numTiers]*simrand.Alias
	for t := tier(0); t < numTiers; t++ {
		weights := make([]float64, NumCategories)
		for c := 0; c < NumCategories; c++ {
			info := categoryInfos[c]
			switch t {
			case tierHead:
				weights[c] = info.ShareHead
			case tierTorso:
				weights[c] = info.ShareTorso
			default:
				weights[c] = info.ShareTail
			}
		}
		out[t] = simrand.NewAlias(weights)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

var ttlChoices = []int32{60, 300, 900, 3600, 21600}
var ttlWeights = []float64{0.25, 0.35, 0.15, 0.15, 0.10}

func drawTTL(src *simrand.Source) int32 {
	r := src.Float64()
	acc := 0.0
	for i, w := range ttlWeights {
		acc += w
		if r < acc {
			return ttlChoices[i]
		}
	}
	return ttlChoices[len(ttlChoices)-1]
}

var subdomainPool = []string{
	"api", "cdn", "static", "img", "m", "blog", "shop", "news", "mail",
	"login", "app", "assets", "media", "dev", "docs",
}

func drawSubdomains(src *simrand.Source, headness float64) ([]string, []float32) {
	// How a site's traffic splits across hostnames varies wildly between
	// sites: some serve everything from the apex, others spread over www
	// and a constellation of subdomains. This heterogeneity is what makes
	// FQDN- and origin-keyed lists (Umbrella, CrUX) hard to normalize
	// fairly (Section 4.2) and scrambles Umbrella's per-name ranks.
	labels := []string{""}
	weights := []float32{float32(0.08 + 0.84*src.Float64())}
	if src.Bernoulli(0.85) {
		labels = append(labels, "www")
		weights = append(weights, float32(0.05+0.6*src.Float64()))
	}
	extra := src.Poisson(0.7 + 2.5*headness)
	if extra > len(subdomainPool) {
		extra = len(subdomainPool)
	}
	perm := src.Perm(len(subdomainPool))
	for j := 0; j < extra; j++ {
		labels = append(labels, subdomainPool[perm[j]])
		weights = append(weights, float32(0.02+0.3*src.Float64()))
	}
	// Normalize weights to sum to 1.
	var sum float32
	for _, w := range weights {
		sum += w
	}
	for i := range weights {
		weights[i] /= sum
	}
	return labels, weights
}

// sortSitesByWeight sorts descending by Weight with a deterministic
// domain-name tiebreak.
func sortSitesByWeight(sites []Site) {
	// sort.Slice on a []Site of this size copies a lot; it is still the
	// clearest option and runs once per world.
	sortSlice(sites, func(a, b *Site) bool {
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		return a.Domain < b.Domain
	})
}

// NumSites returns the number of sites.
func (w *World) NumSites() int { return len(w.Sites) }

// Site returns the site with the given ID (equal to its true-rank index).
func (w *World) Site(id int32) *Site { return &w.Sites[id] }

// ByDomain returns the site ID for a registrable domain.
func (w *World) ByDomain(name string) (int32, bool) {
	id, ok := w.byDomain[name]
	return id, ok
}

// TrueRank returns the ground-truth global popularity ranking by domain.
func (w *World) TrueRank() *rank.Ranking { return w.trueRank }

// Interner returns the study-wide name table. Site domains occupy IDs
// 0..NumSites-1 in true-rank order; apexes, FQDNs, and origins interned by
// observers follow.
func (w *World) Interner() *names.Table { return w.tab }

// DomainID returns the interner ID of a site's registrable domain, which
// by construction equals the site ID.
func (w *World) DomainID(site int32) names.ID { return names.ID(site) }

// SiteOfID returns the site whose domain has interner ID id, if id is a
// site domain (IDs at and beyond NumSites belong to other interned names).
func (w *World) SiteOfID(id names.ID) (int32, bool) {
	if int(id) >= len(w.Sites) {
		return 0, false
	}
	return int32(id), true
}

// CloudflareSet returns the set of Cloudflare-served registrable domains.
func (w *World) CloudflareSet() map[string]struct{} {
	s := make(map[string]struct{})
	for i := range w.Sites {
		if w.Sites[i].Cloudflare() {
			s[w.Sites[i].Domain] = struct{}{}
		}
	}
	return s
}

// BackendSet returns the registrable domains serving any traffic through
// backend b (primary or secondary).
func (w *World) BackendSet(b Backend) map[string]struct{} {
	s := make(map[string]struct{})
	for i := range w.Sites {
		if w.Sites[i].OnBackend(b) {
			s[w.Sites[i].Domain] = struct{}{}
		}
	}
	return s
}

// Backends returns the world's deployed edge backends in deployment order.
func (w *World) Backends() []Backend {
	return DeployedBackends(w.Cfg.Backends)
}

// Deployed reports whether backend b serves an observable edge in this
// world.
func (w *World) Deployed(b Backend) bool {
	return b >= BackendCdnflare && int(b-BackendCdnflare) < w.Cfg.Backends
}

// ServingBackend returns the backend whose edge actually fronts the site:
// its primary CDN when that backend is deployed, BackendNone otherwise.
func (w *World) ServingBackend(s *Site) Backend {
	if w.Deployed(s.CDN) {
		return s.CDN
	}
	return BackendNone
}

// Vantages returns the world's measurement vantage points. Vantage 0 is
// always the transparent primary.
func (w *World) Vantages() []Vantage { return w.Cfg.Vantages }

// SiteWeights returns per-site selection weights for browsing clients in
// the given country and platform: the site's true weight, scaled by its
// audience share in the country, the country's openness to foreign sites
// (near zero for China), and the site's platform skew.
func (w *World) SiteWeights(c Country, p Platform) []float64 {
	open := countryInfos[c].Openness
	if w.Cfg.Ablate.NoOpenness {
		open = 1
	}
	// Behind a restrictive network, what leaks through is not proportional
	// to global popularity: foreign consumption is both suppressed and
	// scrambled. The scramble is a mean-one log-normal whose spread grows
	// as openness falls, keyed deterministically by (country, site).
	sigma := 1.6 * (1 - open)
	mu := -sigma * sigma / 2
	out := make([]float64, len(w.Sites))
	for i := range w.Sites {
		s := &w.Sites[i]
		pf := float64(s.MobileShare)
		if p == Windows {
			pf = 1 - pf
		}
		wt := s.Weight * float64(s.CountryShare[c]) * 2 * pf
		if s.Home != c {
			wt *= open
			if sigma > 0 {
				noise := simrand.New(w.Cfg.Seed).Derive("foreign-scramble").
					At(int(c)<<24 | i)
				wt *= noise.LogNormal(mu, sigma)
			}
		}
		out[i] = wt
	}
	return out
}

// PanelDistortion returns per-site multipliers describing how the Alexa
// extension panel's demographic skews the site mix it observes: a category
// affinity (webmaster/SEO-adjacent categories over-represented) times a
// stable per-site log-normal. Panel-demographic clients draw their fresh
// visits from the base weights times this distortion.
func (w *World) PanelDistortion() []float64 {
	src := simrand.New(w.Cfg.Seed).Derive("panel-distortion")
	out := make([]float64, len(w.Sites))
	for i := range w.Sites {
		s := &w.Sites[i]
		d := src.At(i)
		out[i] = s.Category.Info().PanelAffinity * d.LogNormal(0, 0.35)
		// A small fraction of sites install Alexa Certify code and are
		// measured (and boosted) directly [4]; these are the grossly
		// over-ranked entries behind the two-magnitude inflation of
		// Section 5.3.
		if d.Bernoulli(0.02) {
			out[i] *= 80
		}
	}
	return out
}

// WorkDistortion returns per-site multipliers for workday browsing on
// corporate networks: the category's work affinity times a stable per-site
// log-normal. Enterprise clients draw their at-work visits from the base
// weights times this distortion.
func (w *World) WorkDistortion() []float64 {
	src := simrand.New(w.Cfg.Seed).Derive("work-distortion")
	out := make([]float64, len(w.Sites))
	for i := range w.Sites {
		s := &w.Sites[i]
		out[i] = s.Category.Info().WorkAffinity * src.At(i).LogNormal(0, 0.8)
	}
	return out
}

// Describe returns a one-line summary for logs and CLI output.
func (w *World) Describe() string {
	cf := 0
	for i := range w.Sites {
		if w.Sites[i].Cloudflare() {
			cf++
		}
	}
	return fmt.Sprintf("world: %d sites (%.1f%% cloudflare), %d infra names, seed %d",
		len(w.Sites), 100*float64(cf)/float64(len(w.Sites)), len(w.Infra), w.Cfg.Seed)
}
