package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 64", same)
	}
}

func TestDeriveIndependentOfParentUse(t *testing.T) {
	a := New(7)
	a.Uint64() // consume from parent
	d1 := a.Derive("traffic")

	b := New(7)
	d2 := b.Derive("traffic")
	for i := 0; i < 100; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatal("Derive depends on parent consumption; must be seed-path keyed")
		}
	}
}

func TestDeriveLabelsDiffer(t *testing.T) {
	a := New(7).Derive("x")
	b := New(7).Derive("y")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("distinct labels produced matching streams")
	}
}

func TestAtIndexing(t *testing.T) {
	root := New(9)
	s3a := root.At(3)
	s3b := New(9).At(3)
	s4 := root.At(4)
	if s3a.Uint64() != s3b.Uint64() {
		t.Fatal("At not deterministic")
	}
	if s3b.Uint64() == s4.Uint64() && s3b.Uint64() == s4.Uint64() {
		t.Fatal("At(3) and At(4) look identical")
	}
}

func TestFloat64Range(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(123)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 100)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(55)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		s := New(77)
		const n = 100000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(lambda))
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.1 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	s := New(1)
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Fatal("Poisson with nonpositive lambda must be 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {50, 0.9}, {1000, 0.02}, {500, 0.5}} {
		s := New(88)
		const draws = 50000
		var sum float64
		for i := 0; i < draws; i++ {
			v := s.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", tc.n, tc.p, v)
			}
			sum += float64(v)
		}
		mean := sum / draws
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > 0.05*want+0.1 {
			t.Errorf("Binomial(%d,%v) mean = %v want ~%v", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	s := New(3)
	if s.Binomial(10, 0) != 0 {
		t.Error("p=0 must give 0")
	}
	if s.Binomial(10, 1) != 10 {
		t.Error("p=1 must give n")
	}
	if s.Binomial(0, 0.5) != 0 {
		t.Error("n=0 must give 0")
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(99)
	p := 0.25
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(4)
	const n = 100000
	vals := 0
	for i := 0; i < n; i++ {
		if s.LogNormal(2, 0.7) < math.Exp(2) {
			vals++
		}
	}
	frac := float64(vals) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("log-normal median fraction = %v, want ~0.5", frac)
	}
}

func TestShuffle(t *testing.T) {
	s := New(5)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := map[int]bool{}
	for _, x := range v {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Fatal("shuffle lost elements")
	}
}
