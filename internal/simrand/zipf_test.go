package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfRange(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint16, sRaw uint8) bool {
		n := int(nRaw%5000) + 1
		s := 0.2 + float64(sRaw%30)/10 // 0.2 .. 3.1
		z := NewZipf(n, s)
		src := New(seed)
		for i := 0; i < 50; i++ {
			v := z.Draw(src)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

// TestZipfDistribution checks the empirical frequency of the head values
// against the closed-form probabilities, for exponents below, at, and above 1.
func TestZipfDistribution(t *testing.T) {
	for _, s := range []float64{0.7, 1.0, 1.5} {
		const n = 1000
		const draws = 300000
		z := NewZipf(n, s)
		src := New(12345)
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Draw(src)]++
		}
		want := ZipfWeights(n, s)
		for k := 0; k < 5; k++ {
			got := float64(counts[k]) / draws
			if math.Abs(got-want[k]) > 0.01+0.05*want[k] {
				t.Errorf("s=%v rank %d: empirical %.4f want %.4f", s, k, got, want[k])
			}
		}
	}
}

func TestZipfMonotoneHead(t *testing.T) {
	z := NewZipf(100, 1.1)
	src := New(777)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Draw(src)]++
	}
	// Head of the distribution should be (statistically) decreasing.
	for k := 0; k < 4; k++ {
		if counts[k] <= counts[k+1] {
			t.Errorf("rank %d count %d not > rank %d count %d", k, counts[k], k+1, counts[k+1])
		}
	}
}

func TestZipfWeightsNormalized(t *testing.T) {
	err := quick.Check(func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%200) + 1
		s := 0.3 + float64(sRaw%25)/10
		w := ZipfWeights(n, s)
		var sum float64
		for i, v := range w {
			if v <= 0 {
				return false
			}
			if i > 0 && v > w[i-1] {
				return false // must be non-increasing
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, 0) },
		func() { NewZipf(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 4, 0, 2, 3}
	a := NewAlias(weights)
	src := New(2024)
	const draws = 500000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(src)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / total
		if math.Abs(got-want) > 0.005 {
			t.Errorf("outcome %d: empirical %.4f want %.4f", i, got, want)
		}
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[2])
	}
}

func TestAliasSingle(t *testing.T) {
	a := NewAlias([]float64{3})
	src := New(1)
	for i := 0; i < 10; i++ {
		if a.Draw(src) != 0 {
			t.Fatal("single outcome must always be drawn")
		}
	}
}

func TestAliasProperty(t *testing.T) {
	// Every draw index is within range for arbitrary weight vectors.
	err := quick.Check(func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			weights[i] = float64(r)
			sum += weights[i]
		}
		if sum == 0 {
			weights[0] = 1
		}
		a := NewAlias(weights)
		src := New(seed)
		for i := 0; i < 30; i++ {
			v := a.Draw(src)
			if v < 0 || v >= len(weights) {
				return false
			}
			if weights[v] == 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAliasPanics(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", w)
				}
			}()
			NewAlias(w)
		}()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(1_000_000, 1.0)
	src := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Draw(src)
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	w := ZipfWeights(100000, 1.0)
	a := NewAlias(w)
	src := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Draw(src)
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		src.Uint64()
	}
}
