// Package simrand provides deterministic, stream-splittable randomness for
// the simulation.
//
// Every stochastic component of the study draws from a Source derived from a
// root seed plus a chain of string labels and integer indices. Two Sources
// derived along the same path produce identical streams, regardless of
// goroutine scheduling or the order in which unrelated components consume
// randomness. This is what makes whole-study runs reproducible bit-for-bit.
package simrand

import "math/bits"

// splitmix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 is a tiny, well-distributed mixer; we use it both for seeding
// and as the core generator.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash64 mixes a 64-bit value (one SplitMix64 round with the value as state).
func hash64(x uint64) uint64 {
	return splitmix64(&x)
}

// hashString folds a string into a 64-bit value using FNV-1a and then mixes.
func hashString(seed uint64, s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return hash64(h)
}

// Source is a deterministic pseudo-random stream. It implements a xoshiro256**
// generator seeded via SplitMix64, matching the construction recommended by
// the xoshiro authors. The zero Source is not valid; obtain one from New,
// Derive, or At.
type Source struct {
	s0, s1, s2, s3 uint64
	// key identifies the seed path this stream was created from. Derive and
	// At hash against key rather than the evolving state, so child streams
	// do not depend on how much of the parent has been consumed.
	key uint64
}

// New returns a Source for the given root seed.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

func (s *Source) reseed(seed uint64) {
	s.key = seed
	sm := seed
	s.s0 = splitmix64(&sm)
	s.s1 = splitmix64(&sm)
	s.s2 = splitmix64(&sm)
	s.s3 = splitmix64(&sm)
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

// Uint64 returns the next 64 bits from the stream.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Derive returns a new Source whose stream is a deterministic function of
// this Source's seed path and the given label. Deriving does not consume or
// disturb the parent stream.
//
// Typical use: world := simrand.New(seed); sites := world.Derive("sites").
func (s *Source) Derive(label string) *Source {
	var child Source
	child.reseed(hashString(s.key, label))
	return &child
}

// At returns a new Source for the given index, e.g. one stream per site or
// per day. Like Derive, it does not disturb the parent stream.
func (s *Source) At(index int) *Source {
	var child Source
	child.reseed(hash64(s.key ^ (uint64(index)+1)*0x9e3779b97f4a7c15))
	return &child
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with n <= 0")
	}
	return int(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method.
func (s *Source) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the elements of a slice-like collection in place using the
// provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (polar Marsaglia method).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return u * sqrt(-2*ln(q)/q)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -ln(u)
		}
	}
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal (mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return exp(mu + sigma*s.NormFloat64())
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's product method; for large means a normal approximation with
// continuity correction, which is accurate to well under the simulation's
// noise floor for lambda >= 30.
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + sqrt(lambda)*s.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Binomial returns a Binomial(n, p) variate. Small n uses direct simulation;
// large n uses a normal approximation clamped to [0, n].
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := sqrt(mean * (1 - p))
	v := int(mean + sd*s.NormFloat64() + 0.5)
	if v < 0 {
		return 0
	}
	if v > n {
		return n
	}
	return v
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials. p must be in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("simrand: Geometric with p <= 0")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return int(ln(u) / ln(1-p))
}
