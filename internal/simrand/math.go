package simrand

import "math"

// Thin aliases keep distribution code readable without sprinkling math.
// everywhere in hot loops.
func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
func exp(x float64) float64  { return math.Exp(x) }
func pow(x, y float64) float64 {
	return math.Pow(x, y)
}
