package simrand

// Alias is a Walker/Vose alias sampler: O(n) construction, O(1) draws from an
// arbitrary discrete distribution. The simulation uses it for weighted picks
// that happen millions of times (site selection per page load, country and
// browser mixes).
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given non-negative weights. Weights
// need not be normalized. It panics if weights is empty or sums to zero.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("simrand: NewAlias with empty weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("simrand: NewAlias with negative weight")
		}
		sum += w
	}
	if sum == 0 {
		panic("simrand: NewAlias with zero total weight")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Remaining entries are 1 up to floating-point error.
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

// Draw returns an index distributed according to the table's weights.
func (a *Alias) Draw(src *Source) int {
	i := src.Intn(len(a.prob))
	if src.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }
