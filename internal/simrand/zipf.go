package simrand

// Zipf draws from a bounded Zipf distribution over {0, 1, ..., n-1} where
// the probability of value k is proportional to 1/(k+1)^s. It uses the
// rejection-inversion method of Hörmann and Derflinger, which has O(1)
// expected cost per draw for any exponent s > 0, s != 1 handled as well.
//
// Unlike math/rand's Zipf, this implementation is driven by a simrand.Source
// and supports exponents <= 1 (common for web popularity, where s is
// typically 0.8–1.2).
type Zipf struct {
	n       int
	s       float64
	oneMS   float64 // 1 - s
	hx0     float64 // h(x0) shifted
	hImbalH float64 // H(imax + 1/2)
	hx0MinV float64
}

// NewZipf returns a Zipf sampler over n values with exponent s.
// It panics if n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("simrand: Zipf with n <= 0")
	}
	if s <= 0 {
		panic("simrand: Zipf with s <= 0")
	}
	z := &Zipf{n: n, s: s, oneMS: 1 - s}
	z.hx0 = z.h(0.5) - exp(-s*ln(1)) // h(0.5) - 1^{-s} = h(0.5) - 1
	z.hImbalH = z.h(float64(n) + 0.5)
	z.hx0MinV = z.hx0
	return z
}

// h is the antiderivative used by rejection-inversion:
// H(x) = (x^{1-s} - 1)/(1-s) for s != 1, ln(x) for s == 1, evaluated so the
// sampler treats ranks as 1-based internally.
func (z *Zipf) h(x float64) float64 {
	if z.oneMS == 0 {
		return ln(x)
	}
	return (exp(z.oneMS*ln(x)) - 1) / z.oneMS
}

// hInv inverts h.
func (z *Zipf) hInv(x float64) float64 {
	if z.oneMS == 0 {
		return exp(x)
	}
	return exp(ln(1+x*z.oneMS) / z.oneMS)
}

// Draw returns a value in [0, n) with P(k) proportional to 1/(k+1)^s.
func (z *Zipf) Draw(src *Source) int {
	for {
		u := z.hx0 + src.Float64()*(z.hImbalH-z.hx0)
		x := z.hInv(u)
		k := int(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > z.n {
			k = z.n
		}
		fk := float64(k)
		if u >= z.h(fk+0.5)-exp(-z.s*ln(fk)) {
			return k - 1
		}
	}
}

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// ZipfWeights returns the normalized probability vector of a bounded Zipf
// distribution with exponent s over n values (index 0 is the most likely).
// Useful when expected counts rather than samples are needed.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
