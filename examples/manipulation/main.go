// Manipulation: the Sybil panel-infiltration attack as a standalone
// program — the threat model behind Tranco's hardening (Le Pochat et al.,
// NDSS 2019) and the infiltration attacks of Rweyemamu et al. (ISC 2019),
// both cited by the paper.
//
// An attacker enrolls a handful of machines in the Alexa extension panel
// and has them browse one obscure target site all week. The same real
// traffic is invisible at the Cloudflare edge (a rounding error among
// thousands of clients) but enormous inside the sparse panel, so the
// target rockets up Alexa while the amalgamated Tranco list and the
// server-side truth barely move.
package main

import (
	"fmt"
	"log"
	"os"

	"toplists"
)

func main() {
	log.SetFlags(0)
	fmt.Fprintln(os.Stderr, "running baseline + 3 attacked studies (this takes a few seconds)...")
	res, err := toplists.RunAttack(toplists.Config{
		Seed:    2024,
		Sites:   6000,
		Clients: 1500,
		Days:    7,
	}, []int{1, 3, 10})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
