// Quickstart: build a small study and regenerate the paper's headline
// result — Figure 2, the evaluation of all seven top lists against the
// seven Cloudflare popularity metrics — plus the summary shape findings.
package main

import (
	"fmt"
	"log"
	"os"

	"toplists"
)

func main() {
	log.SetFlags(0)
	study, err := toplists.Run(toplists.Config{
		Seed:    42,
		Sites:   8000,
		Clients: 1500,
		Days:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	fmt.Println(study.Describe())
	fmt.Println("evaluated lists:", study.Lists())
	fmt.Println()

	res, err := study.Experiment("fig2")
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Reading the figure: CrUX should dominate every column of the")
	fmt.Println("Jaccard heatmap, Secrank should trail it, and the bottom line")
	fmt.Println("(metric agreement) should sit near 1.0 — the paper's finding")
	fmt.Println("that all seven Cloudflare metrics rank list accuracy identically.")
}
