// Categorybias: the Section 6.4 analysis as a standalone program. It runs a
// small study, then fits the per-category logistic regressions for two
// contrasting lists — Alexa (extension panel, blind to private-mode
// browsing) and CrUX (Chrome telemetry) — and prints their odds of
// including each website category relative to the rest of the Cloudflare
// top-100K universe.
package main

import (
	"fmt"
	"log"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/world"
)

func main() {
	log.SetFlags(0)
	study := core.NewStudy(core.Config{
		Seed:       21,
		NumSites:   10000,
		NumClients: 2000,
		Days:       7,
	})
	study.Run()
	defer study.Close()
	fmt.Println(study.Describe())

	day := study.Cfg.Days - 1
	universe := study.Pipeline.MetricRanking(day, cfmetrics.MAllRequests)
	topK := study.Bucketer.Magnitudes[2]

	fmt.Printf("\nodds of inclusion by category (universe: Cloudflare top %d)\n", topK)
	fmt.Printf("%-14s %10s %10s\n", "category", "Alexa", "CrUX")

	alexaList, _ := study.Alexa.Normalized(day, study.PSL)
	cruxList, _ := study.Crux.Normalized(day, study.PSL)
	alexaOdds, err := core.CategoryBias(study.World, universe, alexaList, topK)
	if err != nil {
		log.Fatal(err)
	}
	cruxOdds, err := core.CategoryBias(study.World, universe, cruxList, topK)
	if err != nil {
		log.Fatal(err)
	}

	for i, cat := range world.AllCategories() {
		a, c := alexaOdds[i], cruxOdds[i]
		fmt.Printf("%-14s %10s %10s\n", cat, cell(a), cell(c))
	}
	fmt.Println("\n('*' marks p<0.01 after Bonferroni; '-' means no such sites in the universe)")
	fmt.Println("expected shape: Adult and Gambling far below 1.0 for Alexa but not CrUX.")
}

func cell(o core.CategoryOdds) string {
	if o.Included+o.Excluded == 0 {
		return "-"
	}
	mark := " "
	if o.Significant {
		mark = "*"
	}
	return fmt.Sprintf("%.2fx%s", o.OddsRatio, mark)
}
