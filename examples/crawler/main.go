// Crawler: the Section 4.3 filtering methodology as a standalone program.
//
// The paper decides which top-list entries are "Cloudflare sites" by
// issuing an HTTP HEAD request to every entry and keeping those whose
// response carries the cf_ray header. This example reproduces that crawl
// against the in-memory network: it generates a universe, takes the
// ground-truth top-500 websites as a stand-in top list, probes each entry
// concurrently, and prints the coverage by rank magnitude (the Table 1
// measurement for one list).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"toplists/internal/httpsim"
	"toplists/internal/world"
)

func main() {
	log.SetFlags(0)
	w := world.Generate(world.Config{Seed: 7, NumSites: 5000})
	fmt.Println(w.Describe())

	network := httpsim.NewNetwork()
	network.AddWorld(w)
	network.Start()
	defer network.Close()

	// The "top list" under test: the true top 500 domains.
	const listLen = 500
	entries := make([]string, listLen)
	for i := 0; i < listLen; i++ {
		entries[i] = w.TrueRank().At(i + 1)
	}

	prober := httpsim.NewProber(network.Client())
	prober.Concurrency = 64
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	start := time.Now()
	results := prober.ProbeAll(ctx, entries)
	fmt.Printf("probed %d entries in %v\n\n", len(results), time.Since(start).Round(time.Millisecond))

	for _, magnitude := range []int{50, 100, 500} {
		cf := 0
		for _, r := range results[:magnitude] {
			if r.Cloudflare {
				cf++
			}
		}
		fmt.Printf("top %4d: %3d cloudflare-served (%.1f%%)\n",
			magnitude, cf, 100*float64(cf)/float64(magnitude))
	}

	fmt.Println("\nnote: the global top 10 are never Cloudflare-served (Section 4.5):")
	for i := 0; i < 10; i++ {
		fmt.Printf("  #%-2d %-35s cloudflare=%v\n", i+1, results[i].Host, results[i].Cloudflare)
	}
}
