// Tranco: build a Tranco-style amalgam list from daily Alexa, Umbrella, and
// Majestic snapshots and demonstrate the property it was designed for
// (Le Pochat et al., NDSS 2019): temporal stability. The example measures
// day-over-day Jaccard similarity of each list's head and shows the
// amalgam's churn sitting well below its most volatile input.
package main

import (
	"fmt"
	"log"

	"toplists/internal/chrome"
	"toplists/internal/linkgraph"
	"toplists/internal/providers"
	"toplists/internal/psl"
	"toplists/internal/simrand"
	"toplists/internal/stats"
	"toplists/internal/traffic"
	"toplists/internal/world"
)

func main() {
	log.SetFlags(0)
	const days = 10
	const seed = 11

	w := world.Generate(world.Config{Seed: seed, NumSites: 6000})
	l := psl.Default()
	graph := linkgraph.Build(w, linkgraph.Config{}, simrand.New(seed).Derive("linkgraph"))

	alexa := providers.NewAlexa(w)
	umbrella := providers.NewUmbrella(w, l)
	majestic := providers.NewMajestic(w, graph)
	telemetry := chrome.NewTelemetry(w)

	engine := traffic.NewEngine(w, traffic.Config{Seed: seed + 1, NumClients: 1200, Days: days})
	engine.AddSink(alexa)
	engine.AddSink(umbrella)
	engine.AddSink(telemetry)
	engine.Run()

	tranco := providers.NewTranco(alexa, umbrella, majestic, l, nil)
	for d := 0; d < days; d++ {
		tranco.ComputeDay(d)
	}

	const head = 200
	churn := func(p providers.List) float64 {
		var sims []float64
		for d := 1; d < days; d++ {
			prev, _ := p.Normalized(d-1, l)
			cur, _ := p.Normalized(d, l)
			sims = append(sims, stats.Jaccard(prev.TopSet(head), cur.TopSet(head)))
		}
		return stats.Mean(sims)
	}

	fmt.Printf("day-over-day top-%d Jaccard similarity (higher = more stable):\n\n", head)
	for _, p := range []providers.List{alexa, umbrella, majestic, tranco} {
		fmt.Printf("  %-10s %.3f\n", p.Name(), churn(p))
	}

	day := days - 1
	t, _ := tranco.Normalized(day, l)
	fmt.Printf("\nfinal Tranco day: %d ranked domains; head of list:\n", t.Len())
	for i := 1; i <= 10 && i <= t.Len(); i++ {
		name := t.At(i)
		if trueRank, ok := w.TrueRank().RankOf(name); ok {
			fmt.Printf("  #%-3d %-35s (true rank %d)\n", i, name, trueRank)
		} else {
			// Umbrella feeds Tranco DNS names that are not websites at
			// all (telemetry endpoints, update servers); the amalgam
			// inherits them, just like the real list does.
			fmt.Printf("  #%-3d %-35s (not a website: DNS infrastructure)\n", i, name)
		}
	}
}
