package toplists

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"testing"

	"toplists/internal/core"
	"toplists/internal/sketch"
)

// snapcheckCfg is the study shape behind `make snapcheck`: a full 28-day
// month (so the resume points 1, 7, 27 sit at the start, inside, and past
// the Secrank window, and day 27 exercises resume-then-finalize) at a
// deliberately small scale, with fault injection on so the fault plan's
// day-keyed derivation is covered too.
func snapcheckCfg(sketchOn bool) core.Config {
	return core.Config{
		Seed:       2022,
		NumSites:   600,
		NumClients: 150,
		Days:       28,
		FaultRate:  0.05,
		Workers:    4,
		Sketch:     sketch.Config{Enabled: sketchOn},
	}
}

// snapDigest hashes everything the resumed service must reproduce: every
// published list for every day, the CrUX dataset, and the resume-stable
// deterministic report subset.
func snapDigest(t *testing.T, s *core.Study) uint64 {
	t.Helper()
	h := fnv.New64a()
	write := func(parts ...string) {
		for _, p := range parts {
			io.WriteString(h, p) //nolint:errcheck // hash writes cannot fail
			h.Write([]byte{0})
		}
	}
	for _, name := range s.ListNames() {
		for d := 0; d < s.Cfg.Days; d++ {
			r, err := s.RankingFor(name, d)
			if err != nil {
				t.Fatalf("RankingFor(%s, %d): %v", name, d, err)
			}
			write("list", name, fmt.Sprint(d))
			for _, n := range r.Names() {
				write(n)
			}
		}
	}
	rep, err := s.Metrics().Snapshot().ResumeStable()
	if err != nil {
		t.Fatal(err)
	}
	write("report", string(rep))
	return h.Sum64()
}

// TestSnapCheck is the checkpoint/restore oracle behind `make snapcheck`:
// a study checkpointed at day k and resumed in a fresh process — at a
// different worker count — must advance to day 28 and publish every list
// and the resume-stable report subset byte-identically to a straight
// 28-day run, in exact and sketch mode, with fault injection on. One
// incremental source study feeds all three checkpoints, so the oracle
// also proves the snapshots were taken at clean day boundaries of a
// live, partially-advanced study.
func TestSnapCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight partial-to-full studies")
	}
	ctx := context.Background()
	for _, mode := range []bool{false, true} {
		t.Run(fmt.Sprintf("sketch=%v", mode), func(t *testing.T) {
			straight := core.NewStudy(snapcheckCfg(mode))
			defer straight.Close()
			straight.Run()
			want := snapDigest(t, straight)

			// One source study, checkpointed as it passes each resume point.
			src := core.NewStudy(snapcheckCfg(mode))
			defer src.Close()
			checkpoints := map[int][]byte{}
			for day := 0; day < 27; {
				if err := src.AdvanceDay(ctx); err != nil {
					t.Fatalf("source AdvanceDay(%d): %v", day, err)
				}
				day = src.Day()
				if day == 1 || day == 7 || day == 27 {
					var buf bytes.Buffer
					if err := src.Snapshot(&buf); err != nil {
						t.Fatalf("Snapshot at day %d: %v", day, err)
					}
					checkpoints[day] = buf.Bytes()
				}
			}

			// Resume each checkpoint at a different worker count and run out
			// the month: every digest must match the straight run's.
			workersFor := map[int]int{1: 1, 7: 4, 27: 0}
			for _, k := range []int{1, 7, 27} {
				r, err := core.Resume(bytes.NewReader(checkpoints[k]), core.ResumeOptions{Workers: workersFor[k]})
				if err != nil {
					t.Fatalf("Resume at day %d: %v", k, err)
				}
				if got := r.Day(); got != k {
					t.Fatalf("resumed study at day %d, want %d", got, k)
				}
				r.Run()
				if got := snapDigest(t, r); got != want {
					t.Errorf("k=%d workers=%d: digest %x after resume, straight run %x",
						k, workersFor[k], got, want)
				}
				r.Close()
			}
		})
	}
}
