// Command cfprobe demonstrates the paper's Cloudflare-filtering step
// (Section 4.3): it builds a synthetic universe, serves it over the
// in-memory HTTP network with a Cloudflare-style edge, then HEAD-probes the
// true top-N domains and reports which carry the cf-ray header.
//
// Usage:
//
//	cfprobe [-sites 5000] [-top 200] [-seed 1] [-concurrency 32]
//	        [-faultrate 0] [-faultseed 1] [-singleshot] [-v]
//	        [-report report.json] [-debugaddr localhost:6060]
//
// With -debugaddr set, live probe and fault-injection metrics are served
// on /metrics (plus /debug/pprof/) while the sweep runs, and a telemetry
// summary is printed to stderr at the end.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"toplists/internal/faults"
	"toplists/internal/httpsim"
	"toplists/internal/obs"
	"toplists/internal/world"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "world seed")
		sites       = flag.Int("sites", 5000, "universe size")
		top         = flag.Int("top", 200, "number of top domains to probe")
		concurrency = flag.Int("concurrency", 32, "concurrent probes")
		faultRate   = flag.Float64("faultrate", 0, "inject network faults at this rate (0..1)")
		faultSeed   = flag.Uint64("faultseed", 1, "fault plan seed")
		singleShot  = flag.Bool("singleshot", false, "disable retries/backoff (the fragile baseline prober)")
		verbose     = flag.Bool("v", false, "print one line per probed host")
		reportPath  = flag.String("report", "", "write a JSON run report (telemetry snapshot) to this file")
		debugAddr   = flag.String("debugaddr", "", "serve /metrics and /debug/pprof/ on this address")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfprobe:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	w := world.Generate(world.Config{Seed: *seed, NumSites: *sites})
	fmt.Fprintln(os.Stderr, w.Describe())

	net := httpsim.NewNetwork()
	net.AddWorld(w)
	if *faultRate > 0 {
		net.SetFaultPlan(&faults.Plan{Seed: *faultSeed, Rate: *faultRate})
	}
	net.SetObs(reg)
	net.Start()
	defer net.Close()

	prober := httpsim.NewProber(net.Client())
	prober.Concurrency = *concurrency
	prober.SingleShot = *singleShot
	prober.Metrics = httpsim.NewProbeMetrics(reg)

	n := *top
	if n > w.NumSites() {
		n = w.NumSites()
	}
	hosts := make([]string, n)
	for i := 0; i < n; i++ {
		hosts[i] = w.Site(int32(i)).Domain
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	start := time.Now()
	results := prober.ProbeAll(ctx, hosts)
	elapsed := time.Since(start)

	cf, down, unknown := 0, 0, 0
	for _, r := range results {
		if r.Cloudflare {
			cf++
		}
		switch r.Outcome {
		case httpsim.OutcomeDown:
			down++
		case httpsim.OutcomeUnknown:
			unknown++
		}
		if *verbose {
			status := "direct"
			switch {
			case r.Outcome != httpsim.OutcomeOK:
				status = r.Outcome.String()
			case r.Cloudflare:
				status = "cloudflare"
			}
			fmt.Printf("%-40s %s\n", r.Host, status)
		}
	}
	fmt.Printf("probed %d hosts in %v (%.0f probes/s)\n",
		len(results), elapsed.Round(time.Millisecond),
		float64(len(results))/elapsed.Seconds())
	fmt.Printf("cloudflare: %d (%.1f%%), down: %d, unknown: %d\n",
		cf, 100*float64(cf)/float64(len(results)), down, unknown)

	rep := reg.Snapshot()
	if *verbose {
		fmt.Fprintln(os.Stderr)
		if err := rep.WriteSummary(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "cfprobe:", err)
		}
	}
	if *reportPath != "" {
		rep.Meta = map[string]string{
			"cmd":       "cfprobe",
			"seed":      strconv.FormatUint(*seed, 10),
			"sites":     strconv.Itoa(*sites),
			"top":       strconv.Itoa(*top),
			"faultrate": strconv.FormatFloat(*faultRate, 'g', -1, 64),
		}
		if err := writeReport(rep, *reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "cfprobe:", err)
			os.Exit(1)
		}
	}
}

// writeReport writes the JSON run report to path.
func writeReport(rep *obs.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
