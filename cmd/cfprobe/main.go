// Command cfprobe demonstrates the paper's Cloudflare-filtering step
// (Section 4.3): it builds a synthetic universe, serves it over the
// in-memory HTTP network with a Cloudflare-style edge, then HEAD-probes the
// true top-N domains and reports which carry the cf-ray header.
//
// Usage:
//
//	cfprobe [-sites 5000] [-top 200] [-seed 1] [-concurrency 32] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"toplists/internal/httpsim"
	"toplists/internal/world"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "world seed")
		sites       = flag.Int("sites", 5000, "universe size")
		top         = flag.Int("top", 200, "number of top domains to probe")
		concurrency = flag.Int("concurrency", 32, "concurrent probes")
		verbose     = flag.Bool("v", false, "print one line per probed host")
	)
	flag.Parse()

	w := world.Generate(world.Config{Seed: *seed, NumSites: *sites})
	fmt.Fprintln(os.Stderr, w.Describe())

	net := httpsim.NewNetwork()
	net.AddWorld(w)
	net.Start()
	defer net.Close()

	prober := httpsim.NewProber(net.Client())
	prober.Concurrency = *concurrency

	n := *top
	if n > w.NumSites() {
		n = w.NumSites()
	}
	hosts := make([]string, n)
	for i := 0; i < n; i++ {
		hosts[i] = w.Site(int32(i)).Domain
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	start := time.Now()
	results := prober.ProbeAll(ctx, hosts)
	elapsed := time.Since(start)

	cf, unreachable := 0, 0
	for _, r := range results {
		if r.Cloudflare {
			cf++
		}
		if !r.Reachable {
			unreachable++
		}
		if *verbose {
			status := "direct"
			switch {
			case !r.Reachable:
				status = "unreachable"
			case r.Cloudflare:
				status = "cloudflare"
			}
			fmt.Printf("%-40s %s\n", r.Host, status)
		}
	}
	fmt.Printf("probed %d hosts in %v (%.0f probes/s)\n",
		len(results), elapsed.Round(time.Millisecond),
		float64(len(results))/elapsed.Seconds())
	fmt.Printf("cloudflare: %d (%.1f%%), unreachable: %d\n",
		cf, 100*float64(cf)/float64(len(results)), unreachable)
}
