// Command toplists runs the study end to end and regenerates the paper's
// tables and figures.
//
// Usage:
//
//	toplists [flags]
//
//	-seed       study seed (default 2022)
//	-sites      universe size (default 50000)
//	-clients    browsing population (default 6000)
//	-days       measurement window in days (default 28)
//	-workers    worker goroutines for the per-day simulation and for the
//	            concurrent experiment evaluation (default 0 = one per CPU;
//	            1 = serial; results are identical either way)
//	-experiment artifact to regenerate: fig1..fig8, tab1..tab3, or "all"
//	-faultrate  inject deterministic network faults at this rate (0..1);
//	            output stays reproducible for a fixed seed
//	-list       print the available experiments and exit
//
// Interrupting the run (Ctrl-C) cancels the simulation and evaluation
// promptly via context cancellation.
//
// Example:
//
//	toplists -sites 20000 -clients 3000 -days 14 -experiment fig2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"toplists"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 2022, "study seed")
		sites      = flag.Int("sites", 50000, "number of websites in the universe")
		clients    = flag.Int("clients", 6000, "number of simulated clients")
		days       = flag.Int("days", 28, "measurement window in days")
		workers    = flag.Int("workers", 0, "simulation and evaluation worker goroutines (0 = one per CPU, 1 = serial)")
		experiment = flag.String("experiment", "all", "experiment id (fig1..fig8, tab1..tab3, stability, faultsense) or 'all'")
		faultRate  = flag.Float64("faultrate", 0, "inject deterministic network faults at this rate (0..1)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		outdir     = flag.String("outdir", "", "also write each artifact to <outdir>/<id>.txt")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		for _, e := range toplists.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Name)
		}
		fmt.Printf("%-6s %s\n", "ablate", "Mechanism ablations (extension; runs 7 studies)")
		fmt.Printf("%-6s %s\n", "robust", "Headline robustness over 5 seeds (extension; runs 5 studies)")
		fmt.Printf("%-6s %s\n", "attack", "Sybil panel-manipulation attack (extension; runs 4 studies)")
		return
	}

	if *experiment == "attack" {
		res, err := toplists.RunAttack(toplists.Config{
			Seed: *seed, Sites: *sites, Clients: *clients, Days: *days,
			Workers: *workers,
		}, []int{1, 3, 10})
		if err != nil {
			fmt.Fprintln(os.Stderr, "toplists:", err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "toplists:", err)
			os.Exit(1)
		}
		return
	}

	if *experiment == "robust" {
		res, err := toplists.RunRobustness(toplists.Config{
			Sites: *sites, Clients: *clients, Days: *days,
			Workers: *workers,
		}, []uint64{*seed, *seed + 1, *seed + 2, *seed + 3, *seed + 4})
		if err != nil {
			fmt.Fprintln(os.Stderr, "toplists:", err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "toplists:", err)
			os.Exit(1)
		}
		return
	}

	if *experiment == "ablate" {
		res, err := toplists.RunAblations(toplists.Config{
			Seed: *seed, Sites: *sites, Clients: *clients, Days: *days,
			Workers: *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "toplists:", err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "toplists:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building study: %d sites, %d clients, %d days (seed %d)...\n",
		*sites, *clients, *days, *seed)
	study, err := toplists.RunContext(ctx, toplists.Config{
		Seed:      *seed,
		Sites:     *sites,
		Clients:   *clients,
		Days:      *days,
		Workers:   *workers,
		AllCombos: true,
		FaultRate: *faultRate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "toplists:", err)
		os.Exit(1)
	}
	defer study.Close()
	fmt.Fprintf(os.Stderr, "%s (built in %v)\n\n", study.Describe(), time.Since(start).Round(time.Millisecond))

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = ids[:0]
		for _, e := range toplists.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	// Experiments execute concurrently on the -workers pool, sharing one
	// memoized artifact store; outcomes come back in canonical paper order
	// so stdout is byte-identical to a serial run.
	outcomes, err := study.RunExperimentsContext(ctx, ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "toplists:", err)
		os.Exit(1)
	}
	for _, oc := range outcomes {
		if oc.Err != nil {
			if oc.ID == "fig8" && *experiment == "all" {
				fmt.Fprintf(os.Stderr, "[%s skipped: %v]\n", oc.ID, oc.Err)
				continue
			}
			fmt.Fprintln(os.Stderr, "toplists:", oc.Err)
			os.Exit(1)
		}
		if err := renderTo(oc.Result, *outdir); err != nil {
			fmt.Fprintln(os.Stderr, "toplists:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// renderTo writes the artifact to stdout and, when outdir is set, to
// <outdir>/<id>.txt as well.
func renderTo(res toplists.Result, outdir string) error {
	if err := res.Render(os.Stdout); err != nil {
		return err
	}
	if outdir == "" {
		return nil
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outdir, res.ID()+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Render(f)
}
