// Command toplists runs the study end to end and regenerates the paper's
// tables and figures.
//
// Usage:
//
//	toplists [flags]
//
//	-seed       study seed (default 2022)
//	-sites      universe size (default 50000)
//	-clients    browsing population (default 6000)
//	-days       measurement window in days (default 28)
//	-workers    worker goroutines for the per-day simulation and for the
//	            concurrent experiment evaluation (default 0 = one per CPU;
//	            1 = serial; results are identical either way)
//	-vantages   measurement vantage points (default 1 = the transparent
//	            global vantage; up to 12)
//	-backends   deployed CDN edge backends (default 1 = Cloudflare-style
//	            only; up to 3)
//	-experiment artifact to regenerate: fig1..fig8, tab1..tab3, or "all"
//	-faultrate  inject deterministic network faults at this rate (0..1);
//	            output stays reproducible for a fixed seed
//	-list       print the available experiments and exit
//	-report     write a machine-readable JSON run report (telemetry
//	            snapshot) to the given file
//	-trace      write a Chrome trace_event JSON timeline of the run to the
//	            given file (open in Perfetto or chrome://tracing); when
//	            -report is also set, the report's meta records the path
//	-debugaddr  serve /metrics and /debug/pprof/ on this address while
//	            the run is in flight (e.g. localhost:6060)
//	-quiet      suppress diagnostics and the end-of-run summary
//	-v          verbose diagnostics
//
// Artifacts go to stdout and nothing else does: every diagnostic, and the
// end-of-run telemetry summary, goes to stderr, so redirecting stdout
// always yields exactly the paper artifacts.
//
// Interrupting the run (Ctrl-C) cancels the simulation and evaluation
// promptly via context cancellation.
//
// Example:
//
//	toplists -sites 20000 -clients 3000 -days 14 -experiment fig2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"toplists"
	"toplists/internal/obs"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 2022, "study seed")
		sites      = flag.Int("sites", 50000, "number of websites in the universe")
		clients    = flag.Int("clients", 6000, "number of simulated clients")
		days       = flag.Int("days", 28, "measurement window in days")
		workers    = flag.Int("workers", 0, "simulation and evaluation worker goroutines (0 = one per CPU, 1 = serial)")
		vantages   = flag.Int("vantages", 1, "measurement vantage points (1 = transparent global only)")
		backends   = flag.Int("backends", 1, "deployed CDN edge backends (1 = Cloudflare-style only)")
		experiment = flag.String("experiment", "all", "experiment id (fig1..fig8, tab1..tab3, stability, faultsense, vantages) or 'all'")
		faultRate  = flag.Float64("faultrate", 0, "inject deterministic network faults at this rate (0..1)")
		sketchMode = flag.Bool("sketch", false, "aggregate through bounded mergeable sketches instead of exact state")
		list       = flag.Bool("list", false, "list available experiments and exit")
		outdir     = flag.String("outdir", "", "also write each artifact to <outdir>/<id>.txt")
		reportPath = flag.String("report", "", "write a JSON run report (telemetry snapshot) to this file")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON run timeline to this file")
		debugAddr  = flag.String("debugaddr", "", "serve /metrics and /debug/pprof/ on this address (e.g. localhost:6060)")
		quiet      = flag.Bool("quiet", false, "suppress diagnostics and the run summary (errors still print)")
		verbose    = flag.Bool("v", false, "verbose diagnostics")
	)
	flag.Parse()

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	if *quiet {
		level = obs.LevelError
	}
	log := obs.NewLogger(os.Stderr, level)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		for _, e := range toplists.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Name)
		}
		fmt.Printf("%-6s %s\n", "ablate", "Mechanism ablations (extension; runs 7 studies)")
		fmt.Printf("%-6s %s\n", "robust", "Headline robustness over 5 seeds (extension; runs 5 studies)")
		fmt.Printf("%-6s %s\n", "attack", "Sybil panel-manipulation attack (extension; runs 4 studies)")
		return
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(0)
		reg.SetTracer(tracer)
		tracer.Begin("run", "cmd")
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Errorf("toplists: %s", errText(err))
			os.Exit(1)
		}
		defer srv.Close()
		log.Infof("debug server on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}

	if *experiment == "attack" {
		res, err := toplists.RunAttack(toplists.Config{
			Seed: *seed, Sites: *sites, Clients: *clients, Days: *days,
			Workers: *workers,
		}, []int{1, 3, 10})
		renderOrDie(log, res, err)
		return
	}

	if *experiment == "robust" {
		res, err := toplists.RunRobustness(toplists.Config{
			Sites: *sites, Clients: *clients, Days: *days,
			Workers: *workers,
		}, []uint64{*seed, *seed + 1, *seed + 2, *seed + 3, *seed + 4})
		renderOrDie(log, res, err)
		return
	}

	if *experiment == "ablate" {
		res, err := toplists.RunAblations(toplists.Config{
			Seed: *seed, Sites: *sites, Clients: *clients, Days: *days,
			Workers: *workers,
		})
		renderOrDie(log, res, err)
		return
	}

	start := time.Now()
	log.Infof("building study: %d sites, %d clients, %d days (seed %d)...",
		*sites, *clients, *days, *seed)
	study, err := toplists.RunContext(ctx, toplists.Config{
		Seed:      *seed,
		Sites:     *sites,
		Clients:   *clients,
		Days:      *days,
		Workers:   *workers,
		Vantages:  *vantages,
		Backends:  *backends,
		AllCombos: true,
		FaultRate: *faultRate,
		Sketch:    *sketchMode,
		Obs:       reg,
	})
	if err != nil {
		log.Errorf("toplists: %s", errText(err))
		os.Exit(1)
	}
	defer study.Close()
	log.Infof("%s (built in %v)", study.Describe(), time.Since(start).Round(time.Millisecond))

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = ids[:0]
		for _, e := range toplists.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	// Experiments execute concurrently on the -workers pool, sharing one
	// memoized artifact store; outcomes come back in canonical paper order
	// so stdout is byte-identical to a serial run.
	outcomes, err := study.RunExperimentsContext(ctx, ids)
	if err != nil {
		log.Errorf("toplists: %s", errText(err))
		os.Exit(1)
	}
	for _, oc := range outcomes {
		if oc.Err != nil {
			if oc.ID == "fig8" && *experiment == "all" {
				log.Infof("[%s skipped: %v]", oc.ID, oc.Err)
				continue
			}
			log.Errorf("toplists: %s", errText(oc.Err))
			os.Exit(1)
		}
		if err := renderTo(oc.Result, *outdir); err != nil {
			log.Errorf("toplists: %s", errText(err))
			os.Exit(1)
		}
		fmt.Println()
	}

	if tracer != nil {
		tracer.End("run", "cmd")
		if err := writeTrace(tracer, *tracePath); err != nil {
			log.Errorf("toplists: trace: %s", errText(err))
			os.Exit(1)
		}
		log.Debugf("trace written to %s (%d events, %d dropped)", *tracePath, tracer.Len(), tracer.Dropped())
	}

	rep := reg.Snapshot()
	rep.Meta = map[string]string{
		"seed":       strconv.FormatUint(*seed, 10),
		"sites":      strconv.Itoa(*sites),
		"clients":    strconv.Itoa(*clients),
		"days":       strconv.Itoa(*days),
		"workers":    strconv.Itoa(*workers),
		"experiment": *experiment,
		"faultrate":  strconv.FormatFloat(*faultRate, 'g', -1, 64),
	}
	if *tracePath != "" {
		rep.Meta["trace"] = *tracePath
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
		if err := rep.WriteSummary(os.Stderr); err != nil {
			log.Errorf("toplists: summary: %v", err)
		}
	}
	if *reportPath != "" {
		if err := writeReport(rep, *reportPath); err != nil {
			log.Errorf("toplists: %s", errText(err))
			os.Exit(1)
		}
		log.Debugf("run report written to %s", *reportPath)
	}
}

// renderOrDie renders a multi-study extension result to stdout, exiting on
// any failure.
func renderOrDie(log *obs.Logger, res toplists.Result, err error) {
	if err == nil {
		err = res.Render(os.Stdout)
	}
	if err != nil {
		log.Errorf("toplists: %s", errText(err))
		os.Exit(1)
	}
}

// errText returns err's message with the library's "toplists: " prefix
// trimmed; library errors self-identify, and the CLI tags every message
// itself, so printing both would double the prefix.
func errText(err error) string {
	return strings.TrimPrefix(err.Error(), "toplists: ")
}

// writeReport writes the JSON run report to path.
func writeReport(rep *obs.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace writes the run timeline as Chrome trace_event JSON to path.
func writeTrace(t *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// renderTo writes the artifact to stdout and, when outdir is set, to
// <outdir>/<id>.txt as well.
func renderTo(res toplists.Result, outdir string) error {
	if err := res.Render(os.Stdout); err != nil {
		return err
	}
	if outdir == "" {
		return nil
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outdir, res.ID()+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.Render(f)
}
