// Command dnsload exercises the DNS substrate over real UDP: it serves the
// synthetic universe from a caching resolver (the Umbrella/Secrank vantage
// point), fires a Zipf-distributed query load through the wire-format stub
// client, and reports resolver cache behaviour — the TTL-driven signal
// suppression behind DNS top lists' coarse popularity resolution.
//
// Usage:
//
//	dnsload [-sites 2000] [-queries 5000] [-workers 8] [-seed 1]
//	        [-faultrate 0] [-faultseed 1] [-report report.json]
//	        [-debugaddr localhost:6060]
//
// With -faultrate set, the resolver is wrapped in the deterministic DNS
// fault injector (SERVFAIL, spurious NXDOMAIN, truncation, drops). With
// -debugaddr set, live cache and fault-injection metrics are served on
// /metrics (plus /debug/pprof/) while the load runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"toplists/internal/dnssim"
	"toplists/internal/faults"
	"toplists/internal/obs"
	"toplists/internal/simrand"
	"toplists/internal/world"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "world seed")
		sites      = flag.Int("sites", 2000, "universe size")
		queries    = flag.Int("queries", 5000, "total queries to send")
		workers    = flag.Int("workers", 8, "concurrent stub clients")
		faultRate  = flag.Float64("faultrate", 0, "inject DNS faults at this rate (0..1)")
		faultSeed  = flag.Uint64("faultseed", 1, "fault plan seed")
		reportPath = flag.String("report", "", "write a JSON run report (telemetry snapshot) to this file")
		debugAddr  = flag.String("debugaddr", "", "serve /metrics and /debug/pprof/ on this address")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnsload:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	w := world.Generate(world.Config{Seed: *seed, NumSites: *sites})
	resolver := dnssim.NewResolver(dnssim.NewWorldAuthority(w), nil)
	var handler dnssim.MessageHandler = resolver
	if *faultRate > 0 {
		handler = &dnssim.FaultHandler{
			Inner:   resolver,
			Plan:    &faults.Plan{Seed: *faultSeed, Rate: *faultRate},
			Metrics: faults.NewMetrics(reg),
		}
	}
	server := dnssim.NewServerWithHandler(handler)
	addr, err := server.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsload:", err)
		os.Exit(1)
	}
	defer server.Close()
	fmt.Fprintf(os.Stderr, "resolver listening on %s (%d names)\n", addr, w.NumSites())

	zipf := simrand.NewZipf(w.NumSites(), 1.05)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var sent, failed atomic.Int64
	// Live views over the resolver's cache counters and the client-side
	// tallies: /metrics readers watch these move while the load runs.
	reg.GaugeFunc("dns.cache.hits", func() int64 { h, _, _ := resolver.Stats(); return h })
	reg.GaugeFunc("dns.cache.misses", func() int64 { _, m, _ := resolver.Stats(); return m })
	reg.GaugeFunc("dns.nxdomain", func() int64 { _, _, nx := resolver.Stats(); return nx })
	reg.GaugeFunc("dns.client.sent", sent.Load)
	reg.GaugeFunc("dns.client.failed", failed.Load)

	perWorker := *queries / *workers
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			src := simrand.New(*seed).Derive("dnsload").At(worker)
			client := &dnssim.Client{Server: addr.String()}
			for j := 0; j < perWorker; j++ {
				site := w.Site(int32(zipf.Draw(src)))
				name := site.Hostname(src.Intn(len(site.Subdomains)))
				if _, _, err := client.Query(ctx, name, dnssim.TypeA); err != nil {
					failed.Add(1)
					continue
				}
				sent.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hits, misses, nx := resolver.Stats()
	total := hits + misses
	fmt.Printf("queries: %d ok, %d failed in %v (%.0f qps)\n",
		sent.Load(), failed.Load(), elapsed.Round(time.Millisecond),
		float64(sent.Load())/elapsed.Seconds())
	fmt.Printf("resolver: %d lookups, %.1f%% cache hits, %d NXDOMAIN\n",
		total, 100*float64(hits)/float64(total), nx)
	fmt.Println("the cache-hit share is the popularity signal a DNS vantage point never sees")

	if *reportPath != "" {
		rep := reg.Snapshot()
		rep.Meta = map[string]string{
			"cmd":       "dnsload",
			"seed":      strconv.FormatUint(*seed, 10),
			"sites":     strconv.Itoa(*sites),
			"queries":   strconv.Itoa(*queries),
			"workers":   strconv.Itoa(*workers),
			"faultrate": strconv.FormatFloat(*faultRate, 'g', -1, 64),
		}
		f, err := os.Create(*reportPath)
		if err == nil {
			err = rep.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dnsload:", err)
			os.Exit(1)
		}
	}
}
