// Command dnsload exercises the DNS substrate over real UDP: it serves the
// synthetic universe from a caching resolver (the Umbrella/Secrank vantage
// point), fires a Zipf-distributed query load through the wire-format stub
// client, and reports resolver cache behaviour — the TTL-driven signal
// suppression behind DNS top lists' coarse popularity resolution.
//
// Usage:
//
//	dnsload [-sites 2000] [-queries 5000] [-workers 8] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"toplists/internal/dnssim"
	"toplists/internal/simrand"
	"toplists/internal/world"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "world seed")
		sites   = flag.Int("sites", 2000, "universe size")
		queries = flag.Int("queries", 5000, "total queries to send")
		workers = flag.Int("workers", 8, "concurrent stub clients")
	)
	flag.Parse()

	w := world.Generate(world.Config{Seed: *seed, NumSites: *sites})
	resolver := dnssim.NewResolver(dnssim.NewWorldAuthority(w), nil)
	server := dnssim.NewServer(resolver)
	addr, err := server.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnsload:", err)
		os.Exit(1)
	}
	defer server.Close()
	fmt.Fprintf(os.Stderr, "resolver listening on %s (%d names)\n", addr, w.NumSites())

	zipf := simrand.NewZipf(w.NumSites(), 1.05)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var sent, failed atomic.Int64
	perWorker := *queries / *workers
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			src := simrand.New(*seed).Derive("dnsload").At(worker)
			client := &dnssim.Client{Server: addr.String()}
			for j := 0; j < perWorker; j++ {
				site := w.Site(int32(zipf.Draw(src)))
				name := site.Hostname(src.Intn(len(site.Subdomains)))
				if _, _, err := client.Query(ctx, name, dnssim.TypeA); err != nil {
					failed.Add(1)
					continue
				}
				sent.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hits, misses, nx := resolver.Stats()
	total := hits + misses
	fmt.Printf("queries: %d ok, %d failed in %v (%.0f qps)\n",
		sent.Load(), failed.Load(), elapsed.Round(time.Millisecond),
		float64(sent.Load())/elapsed.Seconds())
	fmt.Printf("resolver: %d lookups, %.1f%% cache hits, %d NXDOMAIN\n",
		total, 100*float64(hits)/float64(total), nx)
	fmt.Println("the cache-hit share is the popularity signal a DNS vantage point never sees")
}
