package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"toplists/internal/core"
)

func testStudy(t *testing.T, days int) *core.Study {
	t.Helper()
	s := core.NewStudy(core.Config{
		Seed:       31,
		NumSites:   300,
		NumClients: 60,
		Days:       days,
		Workers:    2,
	})
	t.Cleanup(s.Close)
	return s
}

func testServer(t *testing.T, s *core.Study, ckpt string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(s, ckpt, nil).routes())
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, wantCode int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d\n%s", method, url, resp.StatusCode, wantCode, body)
	}
	return body
}

// TestServerSmoke is the service-mode acceptance walk: start a study,
// advance three days over HTTP, read rankings and diffs, checkpoint to
// disk, restore into a second server, and require the restored service
// to report the identical resume-stable telemetry and rankings.
func TestServerSmoke(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "day3.snap")
	s := testStudy(t, 4)
	ts := testServer(t, s, ckpt)

	var status statusResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/status", 200), &status); err != nil {
		t.Fatal(err)
	}
	if status.Day != 0 || status.Done || len(status.Lists) != 7 {
		t.Fatalf("fresh status: %+v", status)
	}

	// No day advanced yet: rankings must not serve, advance must.
	do(t, "GET", ts.URL+"/v1/rankings/Alexa", 404)
	do(t, "POST", ts.URL+"/v1/advance?days=3", 200)

	var rk rankingsResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/rankings/Tranco?day=2&k=10", 200), &rk); err != nil {
		t.Fatal(err)
	}
	if rk.Day != 2 || rk.K != 10 || len(rk.Names) != 10 || rk.Total < 10 {
		t.Fatalf("rankings: %+v", rk)
	}

	var df diffResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/diff?list=Alexa&from=1&to=2&k=50", 200), &df); err != nil {
		t.Fatal(err)
	}
	if df.Jaccard < 0 || df.Jaccard > 1 || len(df.Entered) != len(df.Left) {
		t.Fatalf("diff: %+v", df)
	}

	// Bad requests answer 4xx, not 500.
	do(t, "GET", ts.URL+"/v1/rankings/NoSuchList", 404)
	do(t, "GET", ts.URL+"/v1/rankings/Alexa?day=99", 400)
	do(t, "GET", ts.URL+"/v1/diff?list=Alexa&k=0", 400)
	do(t, "GET", ts.URL+"/v1/diff", 400)
	do(t, "POST", ts.URL+"/v1/advance?days=bogus", 400)

	do(t, "POST", ts.URL+"/v1/checkpoint", 200)
	stable := do(t, "GET", ts.URL+"/v1/report?stable=1", 200)

	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.Resume(f, core.ResumeOptions{Workers: 1})
	f.Close()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer restored.Close()
	ts2 := testServer(t, restored, "")

	if err := json.Unmarshal(do(t, "GET", ts2.URL+"/v1/status", 200), &status); err != nil {
		t.Fatal(err)
	}
	if status.Day != 3 || status.Done {
		t.Fatalf("restored status: %+v", status)
	}
	if got := do(t, "GET", ts2.URL+"/v1/report?stable=1", 200); !bytes.Equal(got, stable) {
		t.Fatalf("resume-stable report differs after restore:\n--- before ---\n%s\n--- after ---\n%s", stable, got)
	}
	want := do(t, "GET", ts.URL+"/v1/rankings/Umbrella?day=2&k=0", 200)
	if got := do(t, "GET", ts2.URL+"/v1/rankings/Umbrella?day=2&k=0", 200); !bytes.Equal(got, want) {
		t.Fatal("restored server serves a different Umbrella day 2")
	}

	// Finish both studies: the last day must finalize and further
	// advancement must answer 409.
	do(t, "POST", ts.URL+"/v1/advance", 200)
	do(t, "POST", ts.URL+"/v1/advance", 409)
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/status", 200), &status); err != nil {
		t.Fatal(err)
	}
	if !status.Done {
		t.Fatalf("status after final day: %+v", status)
	}
	do(t, "GET", ts.URL+"/v1/rankings/CrUX?day=3", 200)
}

// TestServerCheckpointUnconfigured: without -checkpoint the endpoint is a
// clean 400.
func TestServerCheckpointUnconfigured(t *testing.T) {
	ts := testServer(t, testStudy(t, 2), "")
	do(t, "POST", ts.URL+"/v1/checkpoint", 400)
}

// TestServerConcurrentReaders is the reader-consistency acceptance test,
// meaningful under -race: rankings, status, diff, and report readers
// hammer the API while days advance and checkpoints stream out. Every
// reader must observe a complete prior day — a served day is fully
// published, never mid-advancement.
func TestServerConcurrentReaders(t *testing.T) {
	const days = 4
	ckpt := filepath.Join(t.TempDir(), "c.snap")
	s := testStudy(t, days)
	ts := testServer(t, s, ckpt)
	do(t, "POST", ts.URL+"/v1/advance", 200)

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	reader := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopc:
					return
				default:
				}
				if err := fn(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	get := func(path string) (int, []byte, error) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}

	reader(func() error {
		code, b, err := get("/v1/rankings/Tranco?k=5")
		if err != nil || code != 200 {
			return fmt.Errorf("rankings: code %d err %v\n%s", code, err, b)
		}
		var rk rankingsResponse
		if err := json.Unmarshal(b, &rk); err != nil {
			return err
		}
		if rk.Day < 0 || rk.Day >= days || len(rk.Names) == 0 {
			return fmt.Errorf("rankings served a torn day: %+v", rk)
		}
		return nil
	})
	reader(func() error {
		code, b, err := get("/v1/status")
		if err != nil || code != 200 {
			return fmt.Errorf("status: code %d err %v\n%s", code, err, b)
		}
		return nil
	})
	reader(func() error {
		code, _, err := get("/v1/report?stable=1")
		if err != nil || code != 200 {
			return fmt.Errorf("report: code %d err %v", code, err)
		}
		return nil
	})
	reader(func() error {
		// Checkpoints race advancement: both must stay coherent.
		resp, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("checkpoint: code %d", resp.StatusCode)
		}
		return nil
	})

	for d := 1; d < days; d++ {
		do(t, "POST", ts.URL+"/v1/advance", 200)
	}
	close(stopc)
	wg.Wait()

	// The last concurrent checkpoint to win the rename is a coherent day
	// boundary: it must restore cleanly.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := core.Resume(f, core.ResumeOptions{})
	if err != nil {
		t.Fatalf("checkpoint written under load failed to restore: %v", err)
	}
	restored.Close()
}

// multiEdgeServer starts a server over a 2-vantage, 2-backend study with
// two days already advanced, so edge rankings have data to serve.
func multiEdgeServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := core.NewStudy(core.Config{
		Seed:       33,
		NumSites:   300,
		NumClients: 60,
		Days:       3,
		Workers:    2,
		Vantages:   2,
		Backends:   2,
	})
	t.Cleanup(s.Close)
	ts := testServer(t, s, "")
	do(t, "POST", ts.URL+"/v1/advance?days=2", 200)
	return ts
}

func TestServerVantages(t *testing.T) {
	ts := multiEdgeServer(t)
	var resp vantagesResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/vantages", 200), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Vantages) != 2 || len(resp.Backends) != 2 {
		t.Fatalf("grid = %d vantages x %d backends, want 2x2", len(resp.Vantages), len(resp.Backends))
	}
	if v := resp.Vantages[0]; v.Name != "global" || !v.Transparent {
		t.Fatalf("vantage 0 = %+v, want transparent global", v)
	}
	if v := resp.Vantages[1]; v.Name != "us-east" || v.Transparent {
		t.Fatalf("vantage 1 = %+v, want opaque us-east", v)
	}
	if resp.Backends[0] != "cdnflare" || resp.Backends[1] != "edgecast" {
		t.Fatalf("backends = %v", resp.Backends)
	}
	if len(resp.Metrics) != 7 {
		t.Fatalf("metrics = %v, want the seven canonical keys", resp.Metrics)
	}
}

func TestServerEdgeRankings(t *testing.T) {
	ts := multiEdgeServer(t)

	// The transparent primary edge's view equals the un-keyed metric: both
	// sides of the edge key default to the grid's first entry.
	var primary rankingsResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global&backend=cdnflare", 200), &primary); err != nil {
		t.Fatal(err)
	}
	if primary.Vantage != "global" || primary.Backend != "cdnflare" || primary.Total == 0 {
		t.Fatalf("primary edge response: %+v", primary)
	}
	var defaulted rankingsResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global", 200), &defaulted); err != nil {
		t.Fatal(err)
	}
	if defaulted.Backend != "cdnflare" || defaulted.Total != primary.Total {
		t.Fatalf("defaulted backend response: %+v", defaulted)
	}

	// A regional vantage serves its own (smaller or equal) view.
	var regional rankingsResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=us-east&backend=edgecast", 200), &regional); err != nil {
		t.Fatal(err)
	}
	if regional.Total == 0 || regional.Total > primary.Total {
		t.Fatalf("regional edge total = %d (primary %d)", regional.Total, primary.Total)
	}

	// Unknown keys answer 404 with a JSON error, never a panic; a day the
	// study can never serve is 400.
	do(t, "GET", ts.URL+"/v1/rankings/bogus-metric?vantage=global", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=atlantis", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global&backend=akamai", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global&day=2", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global&day=99", 400)
}

func TestServerEdgeRankingsSingleEdge(t *testing.T) {
	// The default single-edge study still serves its one edge and rejects
	// the vantages a wider grid would have.
	s := testStudy(t, 2)
	ts := testServer(t, s, "")
	do(t, "POST", ts.URL+"/v1/advance?days=1", 200)

	var resp vantagesResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/vantages", 200), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Vantages) != 1 || len(resp.Backends) != 1 {
		t.Fatalf("default grid = %+v", resp)
	}
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global", 200)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=us-east", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?backend=edgecast", 404)
}
