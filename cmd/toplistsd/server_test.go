package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"toplists/internal/core"
	"toplists/internal/snapshot"
)

func testStudy(t *testing.T, days int) *core.Study {
	t.Helper()
	s := core.NewStudy(core.Config{
		Seed:       31,
		NumSites:   300,
		NumClients: 60,
		Days:       days,
		Workers:    2,
	})
	t.Cleanup(s.Close)
	return s
}

// testDir opens a fresh checkpoint generation directory.
func testDir(t *testing.T) *snapshot.Dir {
	t.Helper()
	dir, err := snapshot.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func testServer(t *testing.T, s *core.Study, dir *snapshot.Dir) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(s, dir, 5, nil).handler())
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, wantCode int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d\n%s", method, url, resp.StatusCode, wantCode, body)
	}
	return body
}

// TestServerSmoke is the service-mode acceptance walk: start a study,
// advance three days over HTTP, read rankings and diffs, checkpoint to
// a generation directory, restore the newest generation into a second
// server, and require the restored service to report the identical
// resume-stable telemetry and rankings.
func TestServerSmoke(t *testing.T) {
	dir := testDir(t)
	s := testStudy(t, 4)
	ts := testServer(t, s, dir)

	var status statusResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/status", 200), &status); err != nil {
		t.Fatal(err)
	}
	if status.Day != 0 || status.Done || len(status.Lists) != 7 {
		t.Fatalf("fresh status: %+v", status)
	}

	// Liveness is unconditional; readiness needs a published day.
	do(t, "GET", ts.URL+"/healthz", 200)
	do(t, "GET", ts.URL+"/readyz", 503)

	// No day advanced yet: rankings must not serve, advance must.
	do(t, "GET", ts.URL+"/v1/rankings/Alexa", 404)
	do(t, "POST", ts.URL+"/v1/advance?days=3", 200)
	do(t, "GET", ts.URL+"/readyz", 200)

	var rk rankingsResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/rankings/Tranco?day=2&k=10", 200), &rk); err != nil {
		t.Fatal(err)
	}
	if rk.Day != 2 || rk.K != 10 || len(rk.Names) != 10 || rk.Total < 10 {
		t.Fatalf("rankings: %+v", rk)
	}

	var df diffResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/diff?list=Alexa&from=1&to=2&k=50", 200), &df); err != nil {
		t.Fatal(err)
	}
	if df.Jaccard < 0 || df.Jaccard > 1 || len(df.Entered) != len(df.Left) {
		t.Fatalf("diff: %+v", df)
	}

	// Bad requests answer 4xx, not 500.
	do(t, "GET", ts.URL+"/v1/rankings/NoSuchList", 404)
	do(t, "GET", ts.URL+"/v1/rankings/Alexa?day=99", 400)
	do(t, "GET", ts.URL+"/v1/diff?list=Alexa&k=0", 400)
	do(t, "GET", ts.URL+"/v1/diff", 400)
	do(t, "POST", ts.URL+"/v1/advance?days=bogus", 400)

	var ck struct {
		Generation string `json:"generation"`
		Path       string `json:"path"`
		Bytes      int64  `json:"bytes"`
		Day        int    `json:"day"`
	}
	if err := json.Unmarshal(do(t, "POST", ts.URL+"/v1/checkpoint", 200), &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Generation != "study.snap.000001" || ck.Day != 3 || ck.Bytes < 1 {
		t.Fatalf("checkpoint response: %+v", ck)
	}
	stable := do(t, "GET", ts.URL+"/v1/report?stable=1", 200)

	gen, err := dir.Latest()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(gen.Path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.Resume(f, core.ResumeOptions{Workers: 1})
	f.Close()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer restored.Close()
	ts2 := testServer(t, restored, nil)

	if err := json.Unmarshal(do(t, "GET", ts2.URL+"/v1/status", 200), &status); err != nil {
		t.Fatal(err)
	}
	if status.Day != 3 || status.Done {
		t.Fatalf("restored status: %+v", status)
	}
	if got := do(t, "GET", ts2.URL+"/v1/report?stable=1", 200); !bytes.Equal(got, stable) {
		t.Fatalf("resume-stable report differs after restore:\n--- before ---\n%s\n--- after ---\n%s", stable, got)
	}
	want := do(t, "GET", ts.URL+"/v1/rankings/Umbrella?day=2&k=0", 200)
	if got := do(t, "GET", ts2.URL+"/v1/rankings/Umbrella?day=2&k=0", 200); !bytes.Equal(got, want) {
		t.Fatal("restored server serves a different Umbrella day 2")
	}

	// Finish both studies: the last day must finalize and further
	// advancement must answer 409.
	do(t, "POST", ts.URL+"/v1/advance", 200)
	do(t, "POST", ts.URL+"/v1/advance", 409)
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/status", 200), &status); err != nil {
		t.Fatal(err)
	}
	if !status.Done {
		t.Fatalf("status after final day: %+v", status)
	}
	do(t, "GET", ts.URL+"/v1/rankings/CrUX?day=3", 200)

	// A second checkpoint rotates to the next generation.
	do(t, "POST", ts.URL+"/v1/checkpoint", 200)
	gens, err := dir.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[1].Seq != 2 {
		t.Fatalf("generations after two checkpoints: %+v", gens)
	}
}

// TestServerCheckpointUnconfigured: without -checkpoint the endpoint is a
// clean 400.
func TestServerCheckpointUnconfigured(t *testing.T) {
	ts := testServer(t, testStudy(t, 2), nil)
	do(t, "POST", ts.URL+"/v1/checkpoint", 400)
}

// TestServerPanicRecovery: a panicking handler answers a JSON 500 and
// ticks the volatile http.panics counter; the process (and the study)
// keep serving.
func TestServerPanicRecovery(t *testing.T) {
	s := testStudy(t, 2)
	srv := newServer(s, nil, 5, nil)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	mux.Handle("/", srv.routes())
	ts := httptest.NewServer(srv.withRecovery(mux))
	t.Cleanup(ts.Close)

	body := do(t, "GET", ts.URL+"/boom", 500)
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Fatalf("panic response not a JSON error: %s", body)
	}
	do(t, "GET", ts.URL+"/v1/status", 200)
	if got := s.Metrics().Snapshot().Volatile["http.panics"]; got != 1 {
		t.Fatalf("http.panics = %d, want 1", got)
	}
	// Operational mishaps never reach the resume-stable subset.
	stable, err := s.Metrics().Snapshot().ResumeStable()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(stable, []byte("http.")) {
		t.Fatalf("http.* counters leaked into the resume-stable subset:\n%s", stable)
	}
}

// TestServerWriteSemaphore: with every write slot held, advance and
// checkpoint answer 503 + Retry-After instead of queueing.
func TestServerWriteSemaphore(t *testing.T) {
	s := testStudy(t, 2)
	dir := testDir(t)
	srv := newServer(s, dir, 5, nil)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	for i := 0; i < writeSlots; i++ {
		srv.writeSem <- struct{}{}
	}
	for _, path := range []string{"/v1/advance", "/v1/checkpoint"} {
		resp, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s with saturated write path: %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("POST %s: 503 without Retry-After", path)
		}
	}
	if got := s.Metrics().Snapshot().Volatile["http.throttled"]; got != 2 {
		t.Fatalf("http.throttled = %d, want 2", got)
	}
	for i := 0; i < writeSlots; i++ {
		<-srv.writeSem
	}
	// Slots released: the write path serves again.
	do(t, "POST", ts.URL+"/v1/advance", 200)
}

// TestTickLoopShutdown: the merged tick loop exits promptly on cancel
// with no goroutine stuck on a channel send (the bug the old split
// ticker/advancer had). Run under -race it also proves the loop and a
// concurrent reader share the study safely.
func TestTickLoopShutdown(t *testing.T) {
	s := testStudy(t, 3)
	srv := newServer(s, nil, 5, nil)
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.tickLoop(ctx, time.Millisecond)
	}()

	// Reader racing the ticker.
	for s.Day() < 1 {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.RankingFor("Tranco", 0); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tickLoop did not exit after cancel")
	}
	// The loop never cancels a day mid-flight: the study must not abort.
	if err := s.Aborted(); err != nil {
		t.Fatalf("tick loop aborted the study on shutdown: %v", err)
	}
}

// TestTickLoopRunsToCompletion: left alone, the loop finishes the study
// and exits on its own.
func TestTickLoopRunsToCompletion(t *testing.T) {
	s := testStudy(t, 2)
	srv := newServer(s, nil, 5, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.tickLoop(context.Background(), time.Millisecond)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("tickLoop did not complete the study")
	}
	if got := s.Day(); got != 2 {
		t.Fatalf("tick loop stopped at day %d, want 2", got)
	}
}

// TestParseCrashpoint pins the chaos-hook env format.
func TestParseCrashpoint(t *testing.T) {
	if n, off, ok := parseCrashpoint("3:4096"); !ok || n != 3 || off != 4096 {
		t.Fatalf("parseCrashpoint(3:4096) = %d %d %v", n, off, ok)
	}
	for _, bad := range []string{"", "3", ":4096", "0:1", "-1:5", "2:-1", "x:y"} {
		if _, _, ok := parseCrashpoint(bad); ok {
			t.Fatalf("parseCrashpoint(%q) accepted", bad)
		}
	}
}

// TestServerConcurrentReaders is the reader-consistency acceptance test,
// meaningful under -race: rankings, status, diff, and report readers
// hammer the API while days advance and checkpoints stream out. Every
// reader must observe a complete prior day — a served day is fully
// published, never mid-advancement. Write-path 503s are expected: the
// admission semaphore sheds load, it never corrupts it.
func TestServerConcurrentReaders(t *testing.T) {
	const days = 4
	dir := testDir(t)
	s := testStudy(t, days)
	ts := testServer(t, s, dir)
	do(t, "POST", ts.URL+"/v1/advance", 200)

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	reader := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopc:
					return
				default:
				}
				if err := fn(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	get := func(path string) (int, []byte, error) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}

	reader(func() error {
		code, b, err := get("/v1/rankings/Tranco?k=5")
		if err != nil || code != 200 {
			return fmt.Errorf("rankings: code %d err %v\n%s", code, err, b)
		}
		var rk rankingsResponse
		if err := json.Unmarshal(b, &rk); err != nil {
			return err
		}
		if rk.Day < 0 || rk.Day >= days || len(rk.Names) == 0 {
			return fmt.Errorf("rankings served a torn day: %+v", rk)
		}
		return nil
	})
	reader(func() error {
		code, b, err := get("/v1/status")
		if err != nil || code != 200 {
			return fmt.Errorf("status: code %d err %v\n%s", code, err, b)
		}
		return nil
	})
	reader(func() error {
		code, _, err := get("/v1/report?stable=1")
		if err != nil || code != 200 {
			return fmt.Errorf("report: code %d err %v", code, err)
		}
		return nil
	})
	reader(func() error {
		// Checkpoints race advancement: both must stay coherent. 503 is
		// load shedding (Retry-After), not an error.
		resp, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 200 && resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("checkpoint: code %d", resp.StatusCode)
		}
		return nil
	})

	for d := 1; d < days; d++ {
		// Advance can also be shed while a checkpoint streams; retry.
		for {
			resp, err := http.Post(ts.URL+"/v1/advance", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("advance: code %d", resp.StatusCode)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stopc)
	wg.Wait()

	// The newest generation written under load is a coherent day
	// boundary: it must restore cleanly.
	gen, err := dir.Latest()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(gen.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := core.Resume(f, core.ResumeOptions{})
	if err != nil {
		t.Fatalf("checkpoint written under load failed to restore: %v", err)
	}
	restored.Close()
}

// multiEdgeServer starts a server over a 2-vantage, 2-backend study with
// two days already advanced, so edge rankings have data to serve.
func multiEdgeServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := core.NewStudy(core.Config{
		Seed:       33,
		NumSites:   300,
		NumClients: 60,
		Days:       3,
		Workers:    2,
		Vantages:   2,
		Backends:   2,
	})
	t.Cleanup(s.Close)
	ts := testServer(t, s, nil)
	do(t, "POST", ts.URL+"/v1/advance?days=2", 200)
	return ts
}

func TestServerVantages(t *testing.T) {
	ts := multiEdgeServer(t)
	var resp vantagesResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/vantages", 200), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Vantages) != 2 || len(resp.Backends) != 2 {
		t.Fatalf("grid = %d vantages x %d backends, want 2x2", len(resp.Vantages), len(resp.Backends))
	}
	if v := resp.Vantages[0]; v.Name != "global" || !v.Transparent {
		t.Fatalf("vantage 0 = %+v, want transparent global", v)
	}
	if v := resp.Vantages[1]; v.Name != "us-east" || v.Transparent {
		t.Fatalf("vantage 1 = %+v, want opaque us-east", v)
	}
	if resp.Backends[0] != "cdnflare" || resp.Backends[1] != "edgecast" {
		t.Fatalf("backends = %v", resp.Backends)
	}
	if len(resp.Metrics) != 7 {
		t.Fatalf("metrics = %v, want the seven canonical keys", resp.Metrics)
	}
}

func TestServerEdgeRankings(t *testing.T) {
	ts := multiEdgeServer(t)

	// The transparent primary edge's view equals the un-keyed metric: both
	// sides of the edge key default to the grid's first entry.
	var primary rankingsResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global&backend=cdnflare", 200), &primary); err != nil {
		t.Fatal(err)
	}
	if primary.Vantage != "global" || primary.Backend != "cdnflare" || primary.Total == 0 {
		t.Fatalf("primary edge response: %+v", primary)
	}
	var defaulted rankingsResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global", 200), &defaulted); err != nil {
		t.Fatal(err)
	}
	if defaulted.Backend != "cdnflare" || defaulted.Total != primary.Total {
		t.Fatalf("defaulted backend response: %+v", defaulted)
	}

	// A regional vantage serves its own (smaller or equal) view.
	var regional rankingsResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=us-east&backend=edgecast", 200), &regional); err != nil {
		t.Fatal(err)
	}
	if regional.Total == 0 || regional.Total > primary.Total {
		t.Fatalf("regional edge total = %d (primary %d)", regional.Total, primary.Total)
	}

	// Unknown keys answer 404 with a JSON error, never a panic; a day the
	// study can never serve is 400.
	do(t, "GET", ts.URL+"/v1/rankings/bogus-metric?vantage=global", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=atlantis", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global&backend=akamai", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global&day=2", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global&day=99", 400)
}

func TestServerEdgeRankingsSingleEdge(t *testing.T) {
	// The default single-edge study still serves its one edge and rejects
	// the vantages a wider grid would have.
	s := testStudy(t, 2)
	ts := testServer(t, s, nil)
	do(t, "POST", ts.URL+"/v1/advance?days=1", 200)

	var resp vantagesResponse
	if err := json.Unmarshal(do(t, "GET", ts.URL+"/v1/vantages", 200), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Vantages) != 1 || len(resp.Backends) != 1 {
		t.Fatalf("default grid = %+v", resp)
	}
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=global", 200)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?vantage=us-east", 404)
	do(t, "GET", ts.URL+"/v1/rankings/all-requests?backend=edgecast", 404)
}
