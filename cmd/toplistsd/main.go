// Command toplistsd runs the study as a resident service: the simulated
// month advances one day at a time — on demand or on a virtual-clock
// ticker — while HTTP readers consult the day's published lists, and the
// whole study checkpoints durably to disk and resumes byte-identically
// in a later process, even one started by a supervisor after a SIGKILL.
//
// Usage:
//
//	toplistsd [flags]
//
//	-addr           HTTP listen address for the v1 API (default
//	                localhost:8650; :0 picks a free port)
//	-seed           study seed (default 2022)
//	-sites          universe size (default 50000)
//	-clients        browsing population (default 6000)
//	-days           measurement window in days (default 28)
//	-workers        per-day simulation worker goroutines (0 = one per CPU)
//	-vantages       measurement vantage points (1 = the single transparent
//	                global vantage; up to 12)
//	-backends       deployed CDN edge backends (1 = Cloudflare-style only;
//	                up to 3)
//	-allcombos      track all 21 Cloudflare filter-aggregation combinations
//	-sketch         aggregate through bounded mergeable sketches
//	-faultrate      inject deterministic network faults at this rate (0..1)
//	-tick           advance one simulated day per interval (0 = only on
//	                POST /v1/advance)
//	-checkpoint     checkpoint DIRECTORY: POST /v1/checkpoint, the
//	                -autocheckpoint cadence, and shutdown each write a new
//	                fsynced generation (study.snap.NNNNNN) here, and
//	                startup recovers from the newest intact generation
//	-autocheckpoint write a checkpoint generation every N advanced days
//	                (and on the final day; 0 = only manual/shutdown)
//	-retain         checkpoint generations to keep (default 5)
//	-restore        resume from this single snapshot FILE instead of
//	                recovering from the -checkpoint directory
//	-readyfile      write the bound HTTP address to this file once
//	                serving (for harnesses using -addr localhost:0)
//	-trace          write a Chrome trace_event JSON timeline (tick
//	                advances, per-day/per-shard simulate spans, checkpoint
//	                writes) to this file on shutdown
//	-debugaddr      serve /metrics and /debug/pprof/ on this address
//	-quiet          suppress diagnostics (errors still print)
//	-v              verbose diagnostics
//
// API:
//
//	GET  /healthz                liveness: the process serves
//	GET  /readyz                 readiness: >= 1 day published, not aborted
//	GET  /v1/status              day cursor, completion, abort state
//	POST /v1/advance?days=N      simulate N more days (409 when done,
//	                             503 + Retry-After when the write path
//	                             is saturated)
//	GET  /v1/vantages            the vantage/backend measurement grid
//	GET  /v1/rankings/{list}     top k of a list for an advanced day;
//	                             with ?vantage=&backend= the path names a
//	                             Cloudflare metric and the response is
//	                             that (vantage, backend) edge's view
//	GET  /v1/diff                top-k churn of a list between two days
//	GET  /v1/report[?stable=1]   telemetry report (stable = the subset
//	                             pinned across checkpoint/restore)
//	POST /v1/checkpoint          write a new checkpoint generation
//
// Crash model: checkpoint generations are fsynced (file and directory)
// before being renamed into place, so a crash — SIGKILL, power loss —
// at any instant leaves at worst a torn temp file that recovery ignores.
// On startup with -checkpoint, the recovery supervisor scans generations
// newest-first, verifies each frame-by-frame, and resumes the newest
// intact one; corrupt candidates are logged and skipped, never fatal.
//
// Readers never see a torn day: advancement write-holds the study's
// lifecycle lock, so every request observes a complete day boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"toplists/internal/core"
	"toplists/internal/obs"
	"toplists/internal/sketch"
	"toplists/internal/snapshot"
	"toplists/internal/world"
)

// HTTP server hardening. The write timeout bounds the slowest legitimate
// response — a multi-day POST /v1/advance on a large study — so it is
// deliberately generous; the header/read timeouts bound what a slow or
// hostile client can pin per connection.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 10 * time.Minute
	idleTimeout       = 2 * time.Minute
	drainTimeout      = 30 * time.Second
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8650", "HTTP listen address for the v1 API")
		seed       = flag.Uint64("seed", 2022, "study seed")
		sites      = flag.Int("sites", 50000, "number of websites in the universe")
		clients    = flag.Int("clients", 6000, "number of simulated clients")
		days       = flag.Int("days", 28, "measurement window in days")
		workers    = flag.Int("workers", 0, "simulation worker goroutines (0 = one per CPU, 1 = serial)")
		vantages   = flag.Int("vantages", 1, "measurement vantage points (1 = transparent global only)")
		backends   = flag.Int("backends", 1, "deployed CDN edge backends (1 = Cloudflare-style only)")
		allCombos  = flag.Bool("allcombos", false, "track all 21 Cloudflare filter-aggregation combinations")
		sketchMode = flag.Bool("sketch", false, "aggregate through bounded mergeable sketches instead of exact state")
		faultRate  = flag.Float64("faultrate", 0, "inject deterministic network faults at this rate (0..1)")
		tick       = flag.Duration("tick", 0, "advance one simulated day per interval (0 = manual advance only)")
		ckptPath   = flag.String("checkpoint", "", "checkpoint directory for generations, recovery, and shutdown")
		autoCkpt   = flag.Int("autocheckpoint", 0, "write a checkpoint generation every N advanced days (0 = off)")
		retain     = flag.Int("retain", 5, "checkpoint generations to keep")
		restore    = flag.String("restore", "", "resume from this snapshot file (bypasses directory recovery)")
		readyFile  = flag.String("readyfile", "", "write the bound HTTP address here once serving")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON run timeline here on shutdown")
		debugAddr  = flag.String("debugaddr", "", "serve /metrics and /debug/pprof/ on this address")
		quiet      = flag.Bool("quiet", false, "suppress diagnostics (errors still print)")
		verbose    = flag.Bool("v", false, "verbose diagnostics")
	)
	flag.Parse()

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	if *quiet {
		level = obs.LevelError
	}
	log := obs.NewLogger(os.Stderr, level)

	if *vantages < 1 || *vantages > world.MaxVantages {
		log.Errorf("toplistsd: -vantages %d outside [1, %d]", *vantages, world.MaxVantages)
		os.Exit(2)
	}
	if *backends < 1 || *backends > world.NumBackends {
		log.Errorf("toplistsd: -backends %d outside [1, %d]", *backends, world.NumBackends)
		os.Exit(2)
	}
	if *autoCkpt > 0 && *ckptPath == "" {
		log.Errorf("toplistsd: -autocheckpoint needs a -checkpoint directory")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(0)
		reg.SetTracer(tracer)
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Errorf("toplistsd: %v", err)
			os.Exit(1)
		}
		defer srv.Close()
		log.Infof("debug server on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}

	var ckptDir *snapshot.Dir
	if *ckptPath != "" {
		var err error
		ckptDir, err = snapshot.OpenDir(*ckptPath)
		if err != nil {
			log.Errorf("toplistsd: %v", err)
			os.Exit(1)
		}
	}

	study, err := openStudy(studyFlags{
		seed: *seed, sites: *sites, clients: *clients, days: *days,
		workers: *workers, vantages: *vantages, backends: *backends,
		allCombos: *allCombos, sketch: *sketchMode, faultRate: *faultRate,
		restore: *restore,
	}, ckptDir, reg, log)
	if err != nil {
		log.Errorf("toplistsd: %v", err)
		os.Exit(1)
	}
	defer study.Close()

	srv := newServer(study, ckptDir, *retain, log)
	if ckptDir != nil && *autoCkpt > 0 {
		study.SetAutoCheckpoint(*autoCkpt, srv.autoCheckpoint)
		log.Infof("auto-checkpoint every %d day(s), retaining %d generation(s)", *autoCkpt, *retain)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Errorf("toplistsd: %v", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler:           srv.handler(),
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	go func() {
		if err := httpSrv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Errorf("toplistsd: serve: %v", err)
		}
	}()
	log.Infof("v1 API on http://%s (day %d/%d)", lis.Addr(), study.Day(), study.Cfg.Days)
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(lis.Addr().String()), 0o644); err != nil {
			log.Errorf("toplistsd: readyfile: %v", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tickDone sync.WaitGroup
	if *tick > 0 {
		tickDone.Add(1)
		go func() {
			defer tickDone.Done()
			srv.tickLoop(ctx, *tick)
		}()
	}

	<-ctx.Done()
	stop()
	log.Infof("shutting down")

	// Drain order matters for the final checkpoint's day boundary:
	// 1. the ticker stops (an in-flight day completes — tickLoop never
	//    cancels mid-day);
	// 2. in-flight HTTP requests finish, so no POST /v1/advance can move
	//    the cursor underneath the snapshot;
	// 3. the final generation streams out durably;
	// 4. the listener closes.
	tickDone.Wait()
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Errorf("toplistsd: drain: %v", err)
	}

	// Snapshot on the way out so the next process resumes where this one
	// stopped. An aborted study refuses (its sinks are torn) — that is
	// reported, not fatal, and never damages the previous generation.
	if ckptDir != nil {
		if _, _, err := srv.writeCheckpoint(); err != nil {
			log.Errorf("toplistsd: shutdown checkpoint: %v", err)
		}
	}

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = tracer.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			log.Errorf("toplistsd: trace: %v", err)
		} else {
			log.Infof("trace written to %s (%d events, %d dropped)", *tracePath, tracer.Len(), tracer.Dropped())
		}
	}
}

type studyFlags struct {
	seed                        uint64
	sites, clients, days        int
	workers, vantages, backends int
	allCombos, sketch           bool
	faultRate                   float64
	restore                     string
}

// openStudy builds the resident study: an explicit -restore file wins,
// then recovery from the checkpoint directory's newest intact
// generation, then a fresh day-zero study. Recovery failure other than
// "nothing there yet" is fatal on purpose: generations existed and none
// restored, and silently starting over would discard the month.
func openStudy(f studyFlags, ckptDir *snapshot.Dir, reg *obs.Registry, log *obs.Logger) (*core.Study, error) {
	if f.restore != "" {
		file, err := os.Open(f.restore)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		study, err := core.Resume(file, core.ResumeOptions{Workers: f.workers, Obs: reg})
		if err != nil {
			return nil, err
		}
		log.Infof("restored %s at day %d/%d", f.restore, study.Day(), study.Cfg.Days)
		return study, nil
	}

	if ckptDir != nil {
		rec, err := core.Recover(ckptDir, core.ResumeOptions{Workers: f.workers, Obs: reg}, log)
		switch {
		case err == nil:
			log.Infof("recovered generation %s at day %d/%d (%d candidate(s), %d rejected)",
				rec.Gen.Name(), rec.Study.Day(), rec.Study.Cfg.Days, rec.Scanned, rec.Rejected)
			return rec.Study, nil
		case errors.Is(err, core.ErrNoCheckpoint):
			log.Infof("checkpoint directory empty; starting fresh")
		default:
			return nil, err
		}
	}

	start := time.Now()
	study := core.NewStudy(core.Config{
		Seed:           f.seed,
		NumSites:       f.sites,
		NumClients:     f.clients,
		Days:           f.days,
		TrackAllCombos: f.allCombos,
		Workers:        f.workers,
		Vantages:       f.vantages,
		Backends:       f.backends,
		FaultRate:      f.faultRate,
		Sketch:         sketch.Config{Enabled: f.sketch},
		Obs:            reg,
	})
	log.Infof("%s (built in %v)", study.Describe(), time.Since(start).Round(time.Millisecond))
	return study, nil
}
