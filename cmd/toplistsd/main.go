// Command toplistsd runs the study as a resident service: the simulated
// month advances one day at a time — on demand or on a virtual-clock
// ticker — while HTTP readers consult the day's published lists, and the
// whole study can checkpoint to disk and resume byte-identically in a
// later process.
//
// Usage:
//
//	toplistsd [flags]
//
//	-addr       HTTP listen address for the v1 API (default localhost:8650)
//	-seed       study seed (default 2022)
//	-sites      universe size (default 50000)
//	-clients    browsing population (default 6000)
//	-days       measurement window in days (default 28)
//	-workers    per-day simulation worker goroutines (0 = one per CPU)
//	-vantages   measurement vantage points (1 = the single transparent
//	            global vantage; up to 12)
//	-backends   deployed CDN edge backends (1 = Cloudflare-style only;
//	            up to 3)
//	-allcombos  track all 21 Cloudflare filter-aggregation combinations
//	-sketch     aggregate through bounded mergeable sketches
//	-faultrate  inject deterministic network faults at this rate (0..1)
//	-tick       advance one simulated day per interval (0 = only on
//	            POST /v1/advance)
//	-checkpoint snapshot file written by POST /v1/checkpoint and on
//	            SIGTERM/SIGINT
//	-restore    resume from this snapshot instead of starting at day 0
//	-debugaddr  serve /metrics and /debug/pprof/ on this address
//	-quiet      suppress diagnostics (errors still print)
//	-v          verbose diagnostics
//
// API:
//
//	GET  /v1/status              day cursor, completion, abort state
//	POST /v1/advance?days=N      simulate N more days (409 when done)
//	GET  /v1/vantages            the vantage/backend measurement grid
//	GET  /v1/rankings/{list}     top k of a list for an advanced day;
//	                             with ?vantage=&backend= the path names a
//	                             Cloudflare metric and the response is
//	                             that (vantage, backend) edge's view
//	GET  /v1/diff                top-k churn of a list between two days
//	GET  /v1/report[?stable=1]   telemetry report (stable = the subset
//	                             pinned across checkpoint/restore)
//	POST /v1/checkpoint          snapshot to the -checkpoint path
//
// Readers never see a torn day: advancement write-holds the study's
// lifecycle lock, so every request observes a complete day boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"toplists/internal/core"
	"toplists/internal/obs"
	"toplists/internal/sketch"
	"toplists/internal/world"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8650", "HTTP listen address for the v1 API")
		seed       = flag.Uint64("seed", 2022, "study seed")
		sites      = flag.Int("sites", 50000, "number of websites in the universe")
		clients    = flag.Int("clients", 6000, "number of simulated clients")
		days       = flag.Int("days", 28, "measurement window in days")
		workers    = flag.Int("workers", 0, "simulation worker goroutines (0 = one per CPU, 1 = serial)")
		vantages   = flag.Int("vantages", 1, "measurement vantage points (1 = transparent global only)")
		backends   = flag.Int("backends", 1, "deployed CDN edge backends (1 = Cloudflare-style only)")
		allCombos  = flag.Bool("allcombos", false, "track all 21 Cloudflare filter-aggregation combinations")
		sketchMode = flag.Bool("sketch", false, "aggregate through bounded mergeable sketches instead of exact state")
		faultRate  = flag.Float64("faultrate", 0, "inject deterministic network faults at this rate (0..1)")
		tick       = flag.Duration("tick", 0, "advance one simulated day per interval (0 = manual advance only)")
		ckptPath   = flag.String("checkpoint", "", "snapshot file for POST /v1/checkpoint and shutdown")
		restore    = flag.String("restore", "", "resume from this snapshot file")
		debugAddr  = flag.String("debugaddr", "", "serve /metrics and /debug/pprof/ on this address")
		quiet      = flag.Bool("quiet", false, "suppress diagnostics (errors still print)")
		verbose    = flag.Bool("v", false, "verbose diagnostics")
	)
	flag.Parse()

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	if *quiet {
		level = obs.LevelError
	}
	log := obs.NewLogger(os.Stderr, level)

	if *vantages < 1 || *vantages > world.MaxVantages {
		log.Errorf("toplistsd: -vantages %d outside [1, %d]", *vantages, world.MaxVantages)
		os.Exit(2)
	}
	if *backends < 1 || *backends > world.NumBackends {
		log.Errorf("toplistsd: -backends %d outside [1, %d]", *backends, world.NumBackends)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			log.Errorf("toplistsd: %v", err)
			os.Exit(1)
		}
		defer srv.Close()
		log.Infof("debug server on http://%s (/metrics, /debug/pprof/)", srv.Addr())
	}

	var study *core.Study
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			log.Errorf("toplistsd: %v", err)
			os.Exit(1)
		}
		study, err = core.Resume(f, core.ResumeOptions{Workers: *workers, Obs: reg})
		f.Close()
		if err != nil {
			log.Errorf("toplistsd: restore %s: %v", *restore, err)
			os.Exit(1)
		}
		log.Infof("restored %s at day %d/%d", *restore, study.Day(), study.Cfg.Days)
	} else {
		start := time.Now()
		study = core.NewStudy(core.Config{
			Seed:           *seed,
			NumSites:       *sites,
			NumClients:     *clients,
			Days:           *days,
			TrackAllCombos: *allCombos,
			Workers:        *workers,
			Vantages:       *vantages,
			Backends:       *backends,
			FaultRate:      *faultRate,
			Sketch:         sketch.Config{Enabled: *sketchMode},
			Obs:            reg,
		})
		log.Infof("%s (built in %v)", study.Describe(), time.Since(start).Round(time.Millisecond))
	}
	defer study.Close()

	srv := newServer(study, *ckptPath, log)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Errorf("toplistsd: %v", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.routes()}
	go func() {
		if err := httpSrv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Errorf("toplistsd: serve: %v", err)
		}
	}()
	log.Infof("v1 API on http://%s (day %d/%d)", lis.Addr(), study.Day(), study.Cfg.Days)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *tick > 0 {
		ticks := make(chan struct{})
		go func() {
			t := time.NewTicker(*tick)
			defer t.Stop()
			defer close(ticks)
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					ticks <- struct{}{}
				}
			}
		}()
		go srv.advanceLoop(ctx, ticks)
	}

	<-ctx.Done()
	stop()
	log.Infof("shutting down")

	// Snapshot on the way out so the next process resumes where this one
	// stopped. An aborted study refuses (its sinks are torn) — that is
	// reported, not fatal, and never overwrites the previous checkpoint.
	if *ckptPath != "" {
		if _, err := srv.writeCheckpoint(); err != nil {
			log.Errorf("toplistsd: shutdown checkpoint: %v", err)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx) //nolint:errcheck // exiting anyway
}
