package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/obs"
	"toplists/internal/rank"
	"toplists/internal/snapshot"
	"toplists/internal/traffic"
)

// crashpointEnv, when set to "N:OFF", SIGKILLs the process after OFF
// bytes of the Nth checkpoint written by this process have reached the
// temp file — before fsync and rename, so only a torn temp file is left
// behind. It exists for the crashcheck oracle, which uses it to prove
// that a power loss mid-checkpoint-write can never damage the previous
// generation or be mistaken for a valid one.
const crashpointEnv = "TOPLISTSD_CRASHPOINT"

// writeSlots caps concurrent write-path requests (advance, checkpoint).
// Both are heavyweight — a day advance write-holds the study lock, a
// checkpoint streams the full state — so unbounded concurrent POSTs
// would only queue on those locks while holding HTTP resources. Excess
// callers get an immediate 503 with Retry-After instead.
const writeSlots = 2

// server wraps one resident study with the HTTP+JSON control surface.
// All day-lifecycle synchronization lives in core.Study (its lifecycle
// lock); the server only adds checkpoint-directory serialization and a
// write-path admission semaphore, so any number of readers can be in
// flight while a day advances or a checkpoint streams out.
type server struct {
	study *core.Study
	log   *obs.Logger

	// Request-level telemetry, shared by every instrumented route. All of
	// it is Volatile: request traffic is process history, not simulation
	// state, so it must never show up in the deterministic or
	// resume-stable report subsets.
	reqTotal             *obs.Counter
	status2xx, status3xx *obs.Counter
	status4xx, status5xx *obs.Counter

	// ckptMu serializes checkpoint writes: generation numbering in the
	// snapshot directory assumes one writer at a time.
	ckptMu  sync.Mutex
	ckptDir *snapshot.Dir
	retain  int

	// ckptCount counts checkpoint writes attempted by this process; the
	// crashpoint hook keys off it.
	ckptCount  int
	crashNth   int
	crashAfter int64

	writeSem chan struct{}
}

func newServer(study *core.Study, dir *snapshot.Dir, retain int, log *obs.Logger) *server {
	if log == nil {
		log = obs.NewLogger(os.Stderr, obs.LevelError)
	}
	m := study.Metrics()
	s := &server{
		study:     study,
		ckptDir:   dir,
		retain:    retain,
		log:       log,
		writeSem:  make(chan struct{}, writeSlots),
		reqTotal:  m.Counter("http.requests", obs.Volatile),
		status2xx: m.Counter("http.status.2xx", obs.Volatile),
		status3xx: m.Counter("http.status.3xx", obs.Volatile),
		status4xx: m.Counter("http.status.4xx", obs.Volatile),
		status5xx: m.Counter("http.status.5xx", obs.Volatile),
	}
	if spec := os.Getenv(crashpointEnv); spec != "" {
		if nth, off, ok := parseCrashpoint(spec); ok {
			s.crashNth, s.crashAfter = nth, off
			log.Infof("crashpoint armed: SIGKILL after %d bytes of checkpoint %d", off, nth)
		} else {
			log.Errorf("ignoring malformed %s=%q (want N:OFF)", crashpointEnv, spec)
		}
	}
	return s
}

func parseCrashpoint(spec string) (nth int, off int64, ok bool) {
	a, b, found := strings.Cut(spec, ":")
	if !found {
		return 0, 0, false
	}
	nth, err := strconv.Atoi(a)
	if err != nil || nth < 1 {
		return 0, 0, false
	}
	off, err = strconv.ParseInt(b, 10, 64)
	if err != nil || off < 0 {
		return 0, 0, false
	}
	return nth, off, true
}

// handler is the complete serving surface: the route mux wrapped in
// panic recovery, so one faulty handler answers 500 instead of killing
// the resident process (http.Server would otherwise only kill the one
// connection goroutine, but a panic while the study lock is held could
// wedge every later request).
func (s *server) handler() http.Handler {
	return s.withRecovery(s.routes())
}

// routes builds the API surface. Every handler answers JSON; errors are
// {"error": "..."} with a meaningful status code. Each route is
// individually instrumented (per-endpoint latency histogram, status-class
// counters, access log), so the metric key set is fixed by the route
// table, not by whatever paths clients probe.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	for pattern, h := range map[string]http.HandlerFunc{
		"GET /healthz":            s.handleHealth,
		"GET /readyz":             s.handleReady,
		"GET /metrics":            s.handleMetrics,
		"GET /v1/status":          s.handleStatus,
		"POST /v1/advance":        s.handleAdvance,
		"GET /v1/vantages":        s.handleVantages,
		"GET /v1/rankings/{list}": s.handleRankings,
		"GET /v1/diff":            s.handleDiff,
		"GET /v1/report":          s.handleReport,
		"POST /v1/checkpoint":     s.handleCheckpoint,
	} {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	return mux
}

// statusRecorder captures the status code and payload size a handler
// produced, for the latency histograms and the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (rec *statusRecorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(p []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	n, err := rec.ResponseWriter.Write(p)
	rec.bytes += int64(n)
	return n, err
}

// instrument wraps one route with request-level telemetry: a per-endpoint
// latency histogram ("http.latency.<pattern>"), the shared status-class
// counters, and a structured access log line (method, path, status,
// bytes, duration) at debug level (-v).
func (s *server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	lat := s.study.Metrics().Histogram("http.latency." + pattern)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		dur := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		lat.Observe(dur)
		s.reqTotal.Inc()
		switch {
		case rec.status < 300:
			s.status2xx.Inc()
		case rec.status < 400:
			s.status3xx.Inc()
		case rec.status < 500:
			s.status4xx.Inc()
		default:
			s.status5xx.Inc()
		}
		s.log.Debugf("http: %s %s -> %d %dB %s", r.Method, r.URL.Path, rec.status, rec.bytes, dur.Round(time.Microsecond))
	})
}

// withRecovery turns a handler panic into a JSON 500 and a volatile
// http.panics counter tick. Volatile because operational mishaps are
// process history, not simulation state: they must not perturb the
// resume-stable report the crash oracle compares across restarts.
func (s *server) withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				m := s.study.Metrics()
				m.Counter("http.panics", obs.Volatile).Inc()
				// Record the offending path so /metrics shows which
				// endpoint is faulty, not just that something panicked.
				// Panics are rare by construction, so the per-path key
				// cardinality stays bounded in practice.
				m.Counter("http.panics."+r.Method+" "+r.URL.Path, obs.Volatile).Inc()
				s.log.Errorf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
				// Best effort: if the handler already wrote headers this
				// is a no-op on a broken stream, which is all we can do.
				writeErr(w, http.StatusInternalServerError, "internal error")
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// acquireWrite admits a write-path request or answers 503 Retry-After.
// The caller must releaseWrite() iff this returns true.
func (s *server) acquireWrite(w http.ResponseWriter) bool {
	select {
	case s.writeSem <- struct{}{}:
		return true
	default:
		s.study.Metrics().Counter("http.throttled", obs.Volatile).Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "too many concurrent write operations (limit %d)", writeSlots)
		return false
	}
}

func (s *server) releaseWrite() { <-s.writeSem }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// queryInt reads an integer query parameter, falling back to def when
// absent. A malformed value reports ok=false after answering 400.
func queryInt(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parameter %q: %v", name, err)
		return 0, false
	}
	return v, true
}

// handleHealth is liveness: the process is up and serving. It says
// nothing about the study — an aborted study still answers 200 here so
// an operator can reach /v1/status and /v1/report to see why.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is readiness: the study has at least one published day to
// serve and has not aborted. Load balancers and the crash oracle gate on
// this before sending reader traffic.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if err := s.study.Aborted(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "study aborted: %v", err)
		return
	}
	day := s.study.Day()
	if day < 1 {
		writeErr(w, http.StatusServiceUnavailable, "no day published yet (day %d)", day)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "day": day})
}

type statusResponse struct {
	Day     int      `json:"day"`
	Days    int      `json:"days"`
	Done    bool     `json:"done"`
	Aborted string   `json:"aborted,omitempty"`
	Seed    uint64   `json:"seed"`
	Sites   int      `json:"sites"`
	Clients int      `json:"clients"`
	Sketch  bool     `json:"sketch"`
	Lists   []string `json:"lists"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.study
	resp := statusResponse{
		Day:     st.Day(),
		Days:    st.Cfg.Days,
		Seed:    st.Cfg.Seed,
		Sites:   st.Cfg.NumSites,
		Clients: st.Cfg.NumClients,
		Sketch:  st.Cfg.Sketch.Enabled,
		Lists:   st.ListNames(),
	}
	resp.Done = resp.Day == resp.Days
	if err := st.Aborted(); err != nil {
		resp.Aborted = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdvance advances the study by ?days=N (default 1) simulated days.
// Advancing a finished study answers 409 Conflict, as does an aborted
// one; a canceled request (client went away mid-day) latches the study
// and is reported like any other abort on the next call.
func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	n, ok := queryInt(w, r, "days", 1)
	if !ok {
		return
	}
	if n < 1 {
		writeErr(w, http.StatusBadRequest, "days must be >= 1, got %d", n)
		return
	}
	if !s.acquireWrite(w) {
		return
	}
	defer s.releaseWrite()
	for i := 0; i < n; i++ {
		err := s.study.AdvanceDay(r.Context())
		switch {
		case err == nil:
			continue
		case errors.Is(err, traffic.ErrRunComplete), errors.Is(err, core.ErrStudyAborted):
			writeErr(w, http.StatusConflict, "%v", err)
			return
		default:
			writeErr(w, http.StatusInternalServerError, "advance: %v", err)
			return
		}
	}
	day := s.study.Day()
	writeJSON(w, http.StatusOK, map[string]any{
		"day":  day,
		"done": day == s.study.Cfg.Days,
	})
}

type vantageInfo struct {
	Name        string `json:"name"`
	Country     string `json:"country"`
	Transparent bool   `json:"transparent"`
}

type vantagesResponse struct {
	Vantages []vantageInfo `json:"vantages"`
	Backends []string      `json:"backends"`
	Metrics  []string      `json:"metrics"`
}

// handleVantages describes the study's measurement grid: every vantage
// point, every deployed backend, and the metric keys the per-edge
// rankings endpoint accepts.
func (s *server) handleVantages(w http.ResponseWriter, r *http.Request) {
	vs := s.study.Vantages()
	resp := vantagesResponse{Vantages: make([]vantageInfo, 0, len(vs))}
	for i := range vs {
		v := &vs[i]
		resp.Vantages = append(resp.Vantages, vantageInfo{
			Name:        v.Name,
			Country:     v.Country.String(),
			Transparent: v.Transparent(),
		})
	}
	for _, b := range s.study.Backends() {
		resp.Backends = append(resp.Backends, b.String())
	}
	for _, m := range cfmetrics.AllMetrics() {
		resp.Metrics = append(resp.Metrics, m.Key())
	}
	writeJSON(w, http.StatusOK, resp)
}

type rankingsResponse struct {
	List    string   `json:"list"`
	Vantage string   `json:"vantage,omitempty"`
	Backend string   `json:"backend,omitempty"`
	Day     int      `json:"day"`
	K       int      `json:"k"`
	Total   int      `json:"total"`
	Names   []string `json:"names"`
}

// handleRankings serves the top k of one list for one advanced day
// (default: the most recent). k=0 serves the full list. With a ?vantage=
// or ?backend= parameter the path names a Cloudflare metric key instead
// of a list, and the response is that (vantage, backend) edge pipeline's
// view of the metric; an unknown metric, vantage, or backend is 404.
func (s *server) handleRankings(w http.ResponseWriter, r *http.Request) {
	list := r.PathValue("list")
	day, ok := queryInt(w, r, "day", s.study.Day()-1)
	if !ok {
		return
	}
	k, ok := queryInt(w, r, "k", 100)
	if !ok {
		return
	}
	if vantage, backend := r.URL.Query().Get("vantage"), r.URL.Query().Get("backend"); vantage != "" || backend != "" {
		s.edgeRankings(w, r, list, vantage, backend, day, k)
		return
	}
	ranking, err := s.study.RankingFor(list, day)
	if err != nil {
		// A day the study can never serve is the caller's mistake (400); a
		// valid day not yet advanced, or an unknown list, is 404.
		code := http.StatusNotFound
		if r.URL.Query().Get("day") != "" && (day >= s.study.Cfg.Days || day < 0) {
			code = http.StatusBadRequest
		}
		writeErr(w, code, "%v", err)
		return
	}
	names := ranking.Names()
	if k > 0 && k < len(names) {
		names = names[:k]
	}
	writeJSON(w, http.StatusOK, rankingsResponse{
		List:  list,
		Day:   day,
		K:     len(names),
		Total: ranking.Len(),
		Names: names,
	})
}

// edgeRankings serves one (vantage, backend) edge pipeline's view of a
// Cloudflare metric. An omitted side of the edge key defaults to the
// grid's first entry (the transparent global vantage, the Cloudflare-
// style backend), so ?vantage=eu-central alone reads that vantage's view
// of the primary backend.
func (s *server) edgeRankings(w http.ResponseWriter, r *http.Request, metric, vantage, backend string, day, k int) {
	if vantage == "" {
		vantage = s.study.Vantages()[0].Name
	}
	if backend == "" {
		backend = s.study.Backends()[0].String()
	}
	ranking, err := s.study.EdgeRankingFor(metric, vantage, backend, day)
	if err != nil {
		// As for lists: a day the study can never serve is the caller's
		// mistake (400); unknown keys and not-yet-advanced days are 404.
		code := http.StatusNotFound
		if r.URL.Query().Get("day") != "" && (day >= s.study.Cfg.Days || day < 0) {
			code = http.StatusBadRequest
		}
		writeErr(w, code, "%v", err)
		return
	}
	names := ranking.Names()
	if k > 0 && k < len(names) {
		names = names[:k]
	}
	writeJSON(w, http.StatusOK, rankingsResponse{
		List:    metric,
		Vantage: vantage,
		Backend: backend,
		Day:     day,
		K:       len(names),
		Total:   ranking.Len(),
		Names:   names,
	})
}

type diffResponse struct {
	List    string   `json:"list"`
	From    int      `json:"from"`
	To      int      `json:"to"`
	K       int      `json:"k"`
	Entered []string `json:"entered"`
	Left    []string `json:"left"`
	Jaccard float64  `json:"jaccard"`
}

// handleDiff compares the top k of one list between two advanced days:
// which names entered, which left, and the Jaccard similarity of the two
// cuts — the day-over-day churn the paper studies in Section 4.
func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	list := r.URL.Query().Get("list")
	if list == "" {
		writeErr(w, http.StatusBadRequest, "parameter \"list\" is required")
		return
	}
	to, ok := queryInt(w, r, "to", s.study.Day()-1)
	if !ok {
		return
	}
	from, ok := queryInt(w, r, "from", to-1)
	if !ok {
		return
	}
	k, ok := queryInt(w, r, "k", 100)
	if !ok {
		return
	}
	if k < 1 {
		writeErr(w, http.StatusBadRequest, "k must be >= 1, got %d", k)
		return
	}
	fromR, err := s.study.RankingFor(list, from)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	toR, err := s.study.RankingFor(list, to)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	resp := diffResponse{List: list, From: from, To: to, K: k}
	resp.Entered, resp.Left, resp.Jaccard = topKDiff(fromR, toR, k)
	writeJSON(w, http.StatusOK, resp)
}

// topKDiff reports the names that entered and left the top k between two
// rankings (in rank order) and the Jaccard similarity of the cuts.
func topKDiff(from, to *rank.Ranking, k int) (entered, left []string, jaccard float64) {
	fromSet := from.TopSet(k)
	toSet := to.TopSet(k)
	entered, left = []string{}, []string{}
	inter := 0
	for i := 1; i <= to.Len() && i <= k; i++ {
		name := to.At(i)
		if _, ok := fromSet[name]; ok {
			inter++
		} else {
			entered = append(entered, name)
		}
	}
	for i := 1; i <= from.Len() && i <= k; i++ {
		name := from.At(i)
		if _, ok := toSet[name]; !ok {
			left = append(left, name)
		}
	}
	union := len(fromSet) + len(toSet) - inter
	if union > 0 {
		jaccard = float64(inter) / float64(union)
	}
	return entered, left, jaccard
}

// handleMetrics serves the full telemetry report on the main API port —
// the same document -debugaddr's /metrics serves, here so the request
// histograms and status counters are observable without a second
// listener.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.study.Metrics().Snapshot().WriteJSON(w) //nolint:errcheck // client went away
}

// handleReport serves the telemetry run report: the full snapshot by
// default, or with ?stable=1 only the resume-stable deterministic subset
// — the bytes `make snapcheck` pins across checkpoint/restore.
func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep := s.study.Metrics().Snapshot()
	if r.URL.Query().Get("stable") != "" {
		b, err := rep.ResumeStable()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b) //nolint:errcheck // client went away
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rep.WriteJSON(w) //nolint:errcheck // client went away
}

// handleCheckpoint snapshots the study to the configured directory.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.ckptDir == nil {
		writeErr(w, http.StatusBadRequest, "no -checkpoint directory configured")
		return
	}
	if !s.acquireWrite(w) {
		return
	}
	defer s.releaseWrite()
	gen, n, err := s.writeCheckpoint()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, core.ErrStudyAborted) {
			code = http.StatusConflict
		}
		writeErr(w, code, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen.Name(),
		"path":       gen.Path,
		"bytes":      n,
		"day":        s.study.Day(),
	})
}

// writeCheckpoint snapshots the study into a fresh generation. The
// snapshot takes the study's read lock itself, so this is the endpoint
// path; the auto-checkpoint hook, which already holds the write lock,
// goes through autoCheckpoint.
//
// Lock order here is ckptMu -> study read lock. The auto hook runs with
// the study WRITE lock held, so it must never block on ckptMu — that
// would be the classic inversion deadlock. It uses TryLock instead.
func (s *server) writeCheckpoint() (snapshot.Gen, int64, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.writeGenerationLocked(s.study.Day, s.study.Snapshot)
}

// autoCheckpoint is the core.CheckpointFunc wired into the study by
// main: it runs on the advance path with the write lock already held, so
// it receives the study's lock-free snapshot writer. If a manual
// checkpoint holds ckptMu it is necessarily blocked on the study's read
// lock and will capture this very day boundary (or a newer one) the
// moment the advance returns — so skipping here loses nothing and
// avoids deadlocking against it.
func (s *server) autoCheckpoint(day int, write func(io.Writer) error) error {
	if !s.ckptMu.TryLock() {
		s.log.Infof("checkpoint: day %d auto-checkpoint skipped, manual checkpoint in flight", day)
		return nil
	}
	defer s.ckptMu.Unlock()
	_, _, err := s.writeGenerationLocked(func() int { return day }, write)
	return err
}

// writeGenerationLocked (ckptMu held) performs one durable checkpoint
// write: next generation file, fsynced and renamed into place by the
// snapshot directory, then pruned to the retention limit. day is a func
// because the endpoint path reads it after the snapshot settles, while
// the auto hook already knows it.
func (s *server) writeGenerationLocked(day func() int, write func(io.Writer) error) (snapshot.Gen, int64, error) {
	s.ckptCount++
	if s.crashNth > 0 && s.ckptCount == s.crashNth {
		write = crashAfter(write, s.crashAfter)
	}
	gen, n, err := s.ckptDir.Write(write)
	if err != nil {
		return snapshot.Gen{}, 0, err
	}
	if _, err := s.ckptDir.Prune(s.retain); err != nil {
		// Retention is advisory: the new generation is already durable.
		s.log.Errorf("checkpoint: prune: %v", err)
	}
	s.log.Infof("checkpoint: day %d, %d bytes -> %s", day(), n, gen.Path)
	return gen, n, nil
}

// crashAfter wraps a snapshot writer so that after off bytes the process
// SIGKILLs itself — no deferred cleanup, no flush, exactly what a power
// loss mid-write leaves behind.
func crashAfter(write func(io.Writer) error, off int64) func(io.Writer) error {
	return func(w io.Writer) error {
		return write(&crashWriter{w: w, remaining: off})
	}
}

type crashWriter struct {
	w         io.Writer
	remaining int64
}

func (cw *crashWriter) Write(p []byte) (int, error) {
	if int64(len(p)) >= cw.remaining {
		cw.w.Write(p[:cw.remaining])               //nolint:errcheck // dying anyway
		syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck
		select {}                                  // unreachable: SIGKILL is not deliverable to a handler
	}
	cw.remaining -= int64(len(p))
	return cw.w.Write(p)
}

// tickLoop drives the virtual clock: one simulated day per interval
// until the study completes or ctx cancels. Ticker and advancement live
// in ONE goroutine — the previous split (a ticker goroutine feeding an
// unbuffered channel) could block forever on `ticks <- struct{}{}` when
// the consumer exited first, and close the channel under a pending send.
//
// Days advance under context.Background() deliberately: AdvanceDay
// latches the study aborted if its context cancels mid-day, which would
// poison the shutdown checkpoint. Cancellation is honored between days;
// an in-flight day always runs to its boundary.
func (s *server) tickLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if ctx.Err() != nil {
			return
		}
		// phase.tick spans put each ticker-driven advance on the run
		// timeline (and in the phase table) — the resident-mode view of
		// where wall clock goes between checkpoints.
		sp := s.study.Metrics().Span("phase.tick")
		err := s.study.AdvanceDay(context.Background())
		sp.End()
		switch {
		case err == nil:
			s.log.Infof("advanced to day %d/%d", s.study.Day(), s.study.Cfg.Days)
		case errors.Is(err, traffic.ErrRunComplete):
			s.log.Infof("all %d days simulated; ticker idle", s.study.Cfg.Days)
			return
		default:
			s.log.Errorf("advance: %v", err)
			return
		}
	}
}
