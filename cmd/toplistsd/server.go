package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"toplists/internal/cfmetrics"
	"toplists/internal/core"
	"toplists/internal/obs"
	"toplists/internal/rank"
	"toplists/internal/traffic"
)

// server wraps one resident study with the HTTP+JSON control surface.
// All day-lifecycle synchronization lives in core.Study (its lifecycle
// lock); the server only adds checkpoint-file serialization, so any
// number of readers can be in flight while a day advances or a
// checkpoint streams out.
type server struct {
	study *core.Study
	log   *obs.Logger

	// ckptMu serializes checkpoint writes: two concurrent POSTs must not
	// interleave tmp-file renames onto the same path.
	ckptMu   sync.Mutex
	ckptPath string
}

func newServer(study *core.Study, ckptPath string, log *obs.Logger) *server {
	if log == nil {
		log = obs.NewLogger(os.Stderr, obs.LevelError)
	}
	return &server{study: study, ckptPath: ckptPath, log: log}
}

// routes builds the API surface. Every handler answers JSON; errors are
// {"error": "..."} with a meaningful status code.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	mux.HandleFunc("GET /v1/vantages", s.handleVantages)
	mux.HandleFunc("GET /v1/rankings/{list}", s.handleRankings)
	mux.HandleFunc("GET /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// queryInt reads an integer query parameter, falling back to def when
// absent. A malformed value reports ok=false after answering 400.
func queryInt(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parameter %q: %v", name, err)
		return 0, false
	}
	return v, true
}

type statusResponse struct {
	Day     int      `json:"day"`
	Days    int      `json:"days"`
	Done    bool     `json:"done"`
	Aborted string   `json:"aborted,omitempty"`
	Seed    uint64   `json:"seed"`
	Sites   int      `json:"sites"`
	Clients int      `json:"clients"`
	Sketch  bool     `json:"sketch"`
	Lists   []string `json:"lists"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.study
	resp := statusResponse{
		Day:     st.Day(),
		Days:    st.Cfg.Days,
		Seed:    st.Cfg.Seed,
		Sites:   st.Cfg.NumSites,
		Clients: st.Cfg.NumClients,
		Sketch:  st.Cfg.Sketch.Enabled,
		Lists:   st.ListNames(),
	}
	resp.Done = resp.Day == resp.Days
	if err := st.Aborted(); err != nil {
		resp.Aborted = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdvance advances the study by ?days=N (default 1) simulated days.
// Advancing a finished study answers 409 Conflict, as does an aborted
// one; a canceled request (client went away mid-day) latches the study
// and is reported like any other abort on the next call.
func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	n, ok := queryInt(w, r, "days", 1)
	if !ok {
		return
	}
	if n < 1 {
		writeErr(w, http.StatusBadRequest, "days must be >= 1, got %d", n)
		return
	}
	for i := 0; i < n; i++ {
		err := s.study.AdvanceDay(r.Context())
		switch {
		case err == nil:
			continue
		case errors.Is(err, traffic.ErrRunComplete), errors.Is(err, core.ErrStudyAborted):
			writeErr(w, http.StatusConflict, "%v", err)
			return
		default:
			writeErr(w, http.StatusInternalServerError, "advance: %v", err)
			return
		}
	}
	day := s.study.Day()
	writeJSON(w, http.StatusOK, map[string]any{
		"day":  day,
		"done": day == s.study.Cfg.Days,
	})
}

type vantageInfo struct {
	Name        string `json:"name"`
	Country     string `json:"country"`
	Transparent bool   `json:"transparent"`
}

type vantagesResponse struct {
	Vantages []vantageInfo `json:"vantages"`
	Backends []string      `json:"backends"`
	Metrics  []string      `json:"metrics"`
}

// handleVantages describes the study's measurement grid: every vantage
// point, every deployed backend, and the metric keys the per-edge
// rankings endpoint accepts.
func (s *server) handleVantages(w http.ResponseWriter, r *http.Request) {
	vs := s.study.Vantages()
	resp := vantagesResponse{Vantages: make([]vantageInfo, 0, len(vs))}
	for i := range vs {
		v := &vs[i]
		resp.Vantages = append(resp.Vantages, vantageInfo{
			Name:        v.Name,
			Country:     v.Country.String(),
			Transparent: v.Transparent(),
		})
	}
	for _, b := range s.study.Backends() {
		resp.Backends = append(resp.Backends, b.String())
	}
	for _, m := range cfmetrics.AllMetrics() {
		resp.Metrics = append(resp.Metrics, m.Key())
	}
	writeJSON(w, http.StatusOK, resp)
}

type rankingsResponse struct {
	List    string   `json:"list"`
	Vantage string   `json:"vantage,omitempty"`
	Backend string   `json:"backend,omitempty"`
	Day     int      `json:"day"`
	K       int      `json:"k"`
	Total   int      `json:"total"`
	Names   []string `json:"names"`
}

// handleRankings serves the top k of one list for one advanced day
// (default: the most recent). k=0 serves the full list. With a ?vantage=
// or ?backend= parameter the path names a Cloudflare metric key instead
// of a list, and the response is that (vantage, backend) edge pipeline's
// view of the metric; an unknown metric, vantage, or backend is 404.
func (s *server) handleRankings(w http.ResponseWriter, r *http.Request) {
	list := r.PathValue("list")
	day, ok := queryInt(w, r, "day", s.study.Day()-1)
	if !ok {
		return
	}
	k, ok := queryInt(w, r, "k", 100)
	if !ok {
		return
	}
	if vantage, backend := r.URL.Query().Get("vantage"), r.URL.Query().Get("backend"); vantage != "" || backend != "" {
		s.edgeRankings(w, r, list, vantage, backend, day, k)
		return
	}
	ranking, err := s.study.RankingFor(list, day)
	if err != nil {
		// A day the study can never serve is the caller's mistake (400); a
		// valid day not yet advanced, or an unknown list, is 404.
		code := http.StatusNotFound
		if r.URL.Query().Get("day") != "" && (day >= s.study.Cfg.Days || day < 0) {
			code = http.StatusBadRequest
		}
		writeErr(w, code, "%v", err)
		return
	}
	names := ranking.Names()
	if k > 0 && k < len(names) {
		names = names[:k]
	}
	writeJSON(w, http.StatusOK, rankingsResponse{
		List:  list,
		Day:   day,
		K:     len(names),
		Total: ranking.Len(),
		Names: names,
	})
}

// edgeRankings serves one (vantage, backend) edge pipeline's view of a
// Cloudflare metric. An omitted side of the edge key defaults to the
// grid's first entry (the transparent global vantage, the Cloudflare-
// style backend), so ?vantage=eu-central alone reads that vantage's view
// of the primary backend.
func (s *server) edgeRankings(w http.ResponseWriter, r *http.Request, metric, vantage, backend string, day, k int) {
	if vantage == "" {
		vantage = s.study.Vantages()[0].Name
	}
	if backend == "" {
		backend = s.study.Backends()[0].String()
	}
	ranking, err := s.study.EdgeRankingFor(metric, vantage, backend, day)
	if err != nil {
		// As for lists: a day the study can never serve is the caller's
		// mistake (400); unknown keys and not-yet-advanced days are 404.
		code := http.StatusNotFound
		if r.URL.Query().Get("day") != "" && (day >= s.study.Cfg.Days || day < 0) {
			code = http.StatusBadRequest
		}
		writeErr(w, code, "%v", err)
		return
	}
	names := ranking.Names()
	if k > 0 && k < len(names) {
		names = names[:k]
	}
	writeJSON(w, http.StatusOK, rankingsResponse{
		List:    metric,
		Vantage: vantage,
		Backend: backend,
		Day:     day,
		K:       len(names),
		Total:   ranking.Len(),
		Names:   names,
	})
}

type diffResponse struct {
	List    string   `json:"list"`
	From    int      `json:"from"`
	To      int      `json:"to"`
	K       int      `json:"k"`
	Entered []string `json:"entered"`
	Left    []string `json:"left"`
	Jaccard float64  `json:"jaccard"`
}

// handleDiff compares the top k of one list between two advanced days:
// which names entered, which left, and the Jaccard similarity of the two
// cuts — the day-over-day churn the paper studies in Section 4.
func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	list := r.URL.Query().Get("list")
	if list == "" {
		writeErr(w, http.StatusBadRequest, "parameter \"list\" is required")
		return
	}
	to, ok := queryInt(w, r, "to", s.study.Day()-1)
	if !ok {
		return
	}
	from, ok := queryInt(w, r, "from", to-1)
	if !ok {
		return
	}
	k, ok := queryInt(w, r, "k", 100)
	if !ok {
		return
	}
	if k < 1 {
		writeErr(w, http.StatusBadRequest, "k must be >= 1, got %d", k)
		return
	}
	fromR, err := s.study.RankingFor(list, from)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	toR, err := s.study.RankingFor(list, to)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	resp := diffResponse{List: list, From: from, To: to, K: k}
	resp.Entered, resp.Left, resp.Jaccard = topKDiff(fromR, toR, k)
	writeJSON(w, http.StatusOK, resp)
}

// topKDiff reports the names that entered and left the top k between two
// rankings (in rank order) and the Jaccard similarity of the cuts.
func topKDiff(from, to *rank.Ranking, k int) (entered, left []string, jaccard float64) {
	fromSet := from.TopSet(k)
	toSet := to.TopSet(k)
	entered, left = []string{}, []string{}
	inter := 0
	for i := 1; i <= to.Len() && i <= k; i++ {
		name := to.At(i)
		if _, ok := fromSet[name]; ok {
			inter++
		} else {
			entered = append(entered, name)
		}
	}
	for i := 1; i <= from.Len() && i <= k; i++ {
		name := from.At(i)
		if _, ok := toSet[name]; !ok {
			left = append(left, name)
		}
	}
	union := len(fromSet) + len(toSet) - inter
	if union > 0 {
		jaccard = float64(inter) / float64(union)
	}
	return entered, left, jaccard
}

// handleReport serves the telemetry run report: the full snapshot by
// default, or with ?stable=1 only the resume-stable deterministic subset
// — the bytes `make snapcheck` pins across checkpoint/restore.
func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep := s.study.Metrics().Snapshot()
	if r.URL.Query().Get("stable") != "" {
		b, err := rep.ResumeStable()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b) //nolint:errcheck // client went away
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rep.WriteJSON(w) //nolint:errcheck // client went away
}

// handleCheckpoint snapshots the study to the configured checkpoint path.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.ckptPath == "" {
		writeErr(w, http.StatusBadRequest, "no -checkpoint path configured")
		return
	}
	n, err := s.writeCheckpoint()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, core.ErrStudyAborted) {
			code = http.StatusConflict
		}
		writeErr(w, code, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":  s.ckptPath,
		"bytes": n,
		"day":   s.study.Day(),
	})
}

// writeCheckpoint atomically replaces the checkpoint file: the snapshot
// streams to a temp file in the same directory, then renames over the
// target, so a crash mid-write never leaves a torn checkpoint behind.
func (s *server) writeCheckpoint() (int64, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	dir := filepath.Dir(s.ckptPath)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.ckptPath)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after rename
	if err := s.study.Snapshot(tmp); err != nil {
		tmp.Close()
		return 0, err
	}
	n, err := tmp.Seek(0, 2)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), s.ckptPath); err != nil {
		return 0, err
	}
	s.log.Infof("checkpoint: day %d, %d bytes -> %s", s.study.Day(), n, s.ckptPath)
	return n, nil
}

// advanceLoop drives the virtual clock: one simulated day per tick until
// the study completes, the context cancels, or an advancement fails.
func (s *server) advanceLoop(ctx context.Context, tick <-chan struct{}) {
	for {
		select {
		case <-ctx.Done():
			return
		case _, open := <-tick:
			if !open {
				return
			}
		}
		err := s.study.AdvanceDay(ctx)
		switch {
		case err == nil:
			s.log.Infof("advanced to day %d/%d", s.study.Day(), s.study.Cfg.Days)
		case errors.Is(err, traffic.ErrRunComplete):
			s.log.Infof("all %d days simulated; ticker idle", s.study.Cfg.Days)
			return
		case ctx.Err() != nil:
			return
		default:
			s.log.Errorf("advance: %v", err)
			return
		}
	}
}
