// Command sweep drives a declarative grid of study configurations and,
// with -perfgate, the enforced performance gate.
//
// Grid mode (the default) expands the cross product of every axis flag,
// runs each cell as an independent study on a bounded pool, writes one
// toplists-run-report/v1 JSON per cell into -out, and merges all cells
// into a sweep.csv (cell parameters x deterministic counters x phase
// totals x wall/RSS). Cells whose report already exists and parses are
// skipped, so an interrupted sweep resumes where it stopped; pass
// -resume=false to force a full re-run.
//
// Usage:
//
//	sweep [flags]
//
//	-seeds       comma-separated study seeds              (default 2022)
//	-sites       comma-separated universe sizes           (default 20000)
//	-clients     comma-separated browsing populations     (default 3000)
//	-days        comma-separated window lengths           (default 14)
//	-workers     comma-separated worker counts            (default 0 = auto)
//	-faultrates  comma-separated fault injection rates    (default 0)
//	-sketch      exact, sketch, or both                   (default exact)
//	-vantages    comma-separated vantage counts           (default 1)
//	-backends    comma-separated CDN backend counts       (default 1)
//	-experiments comma-separated experiment ids or "all"  (default all)
//	-out         report directory                         (default sweep-out)
//	-csv         merged CSV path (default <out>/sweep.csv; "-" for stdout)
//	-par         cells in flight at once                  (default 1)
//	-resume      skip cells with a valid report           (default true)
//
// Perf-gate mode:
//
//	sweep -perfgate [-baseline BENCH_baseline.json] [-rounds 5]
//	sweep -perfgate -update-baseline [-note "..."]
//
// -perfgate runs the pinned hot-path benchmark set (engine day, warm
// RenderAll, top-set build, Jaccard, sketch merge, snapshot encode),
// compares medians against the committed baseline, prints the
// per-benchmark delta table, and exits non-zero on any regression
// beyond 15% + $PERFGATE_SLACK. -update-baseline rewrites the baseline
// from this machine's medians instead of comparing.
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"toplists/internal/obs"
	"toplists/internal/perfgate"
	"toplists/internal/sweep"
)

func main() {
	var (
		seeds       = flag.String("seeds", "2022", "comma-separated study seeds")
		sites       = flag.String("sites", "20000", "comma-separated universe sizes")
		clients     = flag.String("clients", "3000", "comma-separated browsing populations")
		days        = flag.String("days", "14", "comma-separated measurement windows (days)")
		workers     = flag.String("workers", "0", "comma-separated worker counts (0 = one per CPU)")
		faultRates  = flag.String("faultrates", "0", "comma-separated fault injection rates (0..1)")
		sketchAxis  = flag.String("sketch", "exact", "aggregation mode axis: exact, sketch, or both")
		vantages    = flag.String("vantages", "1", "comma-separated vantage counts")
		backends    = flag.String("backends", "1", "comma-separated CDN backend counts")
		experiments = flag.String("experiments", "all", "comma-separated experiment ids or 'all'")
		outDir      = flag.String("out", "sweep-out", "directory for per-cell run reports")
		csvPath     = flag.String("csv", "", "merged CSV path (default <out>/sweep.csv; '-' for stdout)")
		par         = flag.Int("par", 1, "cells in flight at once")
		resume      = flag.Bool("resume", true, "skip cells whose report already exists and parses")

		gate     = flag.Bool("perfgate", false, "run the pinned benchmark set against -baseline instead of a grid")
		baseline = flag.String("baseline", "BENCH_baseline.json", "perf-gate baseline file")
		update   = flag.Bool("update-baseline", false, "rewrite -baseline from this machine's medians")
		note     = flag.String("note", "", "note stored in the baseline with -update-baseline")
		rounds   = flag.Int("rounds", 5, "perf-gate timing rounds per benchmark")

		quiet   = flag.Bool("quiet", false, "suppress diagnostics (errors still print)")
		verbose = flag.Bool("v", false, "verbose diagnostics")
	)
	flag.Parse()

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	if *quiet {
		level = obs.LevelError
	}
	log := obs.NewLogger(os.Stderr, level)

	if *gate || *update {
		os.Exit(runPerfGate(log, *baseline, *update, *note, *rounds))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	g := sweep.Grid{
		Seeds:       parseUints(log, "seeds", *seeds),
		Sites:       parseInts(log, "sites", *sites),
		Clients:     parseInts(log, "clients", *clients),
		Days:        parseInts(log, "days", *days),
		Workers:     parseInts(log, "workers", *workers),
		FaultRates:  parseFloats(log, "faultrates", *faultRates),
		Sketch:      parseSketchAxis(log, *sketchAxis),
		Vantages:    parseInts(log, "vantages", *vantages),
		Backends:    parseInts(log, "backends", *backends),
		Experiments: strings.Split(*experiments, ","),
	}
	cells := g.Cells()
	log.Infof("sweep: %d cells -> %s (par %d, resume %v)", len(cells), *outDir, *par, *resume)

	start := time.Now()
	results, err := sweep.Run(ctx, g, sweep.Options{
		OutDir: *outDir, Parallel: *par, Resume: *resume, Log: log,
	})
	if err != nil {
		log.Errorf("sweep: %v", err)
		os.Exit(1)
	}
	ran, skipped := 0, 0
	for _, r := range results {
		if r.Skipped {
			skipped++
		} else {
			ran++
		}
	}
	log.Infof("sweep: %d cells done in %v (%d run, %d resumed)",
		len(results), time.Since(start).Round(time.Millisecond), ran, skipped)

	path := *csvPath
	if path == "" {
		path = filepath.Join(*outDir, "sweep.csv")
	}
	if path == "-" {
		if err := sweep.WriteCSV(os.Stdout, results); err != nil {
			log.Errorf("sweep: csv: %v", err)
			os.Exit(1)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Errorf("sweep: csv: %v", err)
		os.Exit(1)
	}
	if err := sweep.WriteCSV(f, results); err != nil {
		f.Close()
		log.Errorf("sweep: csv: %v", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		log.Errorf("sweep: csv: %v", err)
		os.Exit(1)
	}
	log.Infof("sweep: merged CSV written to %s", path)
}

// runPerfGate measures the pinned set and either rewrites the baseline
// or compares against it, returning the process exit code.
func runPerfGate(log *obs.Logger, baselinePath string, update bool, note string, rounds int) int {
	log.Infof("perfgate: measuring %d pinned benchmarks (%d rounds each)...",
		len(perfgate.Benchmarks()), rounds)
	cur := perfgate.Measure(perfgate.Benchmarks(), perfgate.MeasureOptions{
		Rounds: rounds,
		Logf:   log.Debugf,
	})

	if update {
		b := perfgate.Baseline{Schema: perfgate.Schema, Note: note, Benchmarks: cur}
		f, err := os.Create(baselinePath)
		if err != nil {
			log.Errorf("perfgate: %v", err)
			return 1
		}
		if err := b.WriteJSON(f); err != nil {
			f.Close()
			log.Errorf("perfgate: %v", err)
			return 1
		}
		if err := f.Close(); err != nil {
			log.Errorf("perfgate: %v", err)
			return 1
		}
		log.Infof("perfgate: baseline rewritten: %s (%d benchmarks)", baselinePath, len(cur))
		return 0
	}

	base, err := perfgate.LoadBaseline(baselinePath)
	if err != nil {
		log.Errorf("perfgate: %v", err)
		return 1
	}
	threshold := perfgate.DefaultThreshold + perfgate.Slack()
	deltas, ok := perfgate.Compare(base, cur, threshold)
	perfgate.WriteDeltaTable(os.Stderr, deltas, threshold)
	if !ok {
		log.Errorf("perfgate: FAIL — regression beyond %.0f%% (see table above)", threshold*100)
		return 1
	}
	log.Infof("perfgate: ok (threshold %.0f%%)", threshold*100)
	return 0
}

func parseList(log *obs.Logger, name, s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		log.Errorf("sweep: -%s: empty list", name)
		os.Exit(2)
	}
	return out
}

func parseInts(log *obs.Logger, name, s string) []int {
	var out []int
	for _, f := range parseList(log, name, s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			log.Errorf("sweep: -%s: %v", name, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseUints(log *obs.Logger, name, s string) []uint64 {
	var out []uint64
	for _, f := range parseList(log, name, s) {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			log.Errorf("sweep: -%s: %v", name, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(log *obs.Logger, name, s string) []float64 {
	var out []float64
	for _, f := range parseList(log, name, s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			log.Errorf("sweep: -%s: %v", name, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseSketchAxis(log *obs.Logger, s string) []bool {
	switch s {
	case "exact", "off":
		return []bool{false}
	case "sketch", "on":
		return []bool{true}
	case "both":
		return []bool{false, true}
	}
	log.Errorf("sweep: -sketch: %q (want exact, sketch, or both)", s)
	os.Exit(2)
	return nil
}
