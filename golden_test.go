package toplists

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the RenderAll golden files instead of comparing")

// TestRenderAllGolden pins the full rendered evaluation output for two
// seeds against checked-in golden files captured from the string-backed
// implementation. The interned (ID-backed) evaluation must render
// byte-identically: interner IDs are an internal vocabulary only — every
// ordering decision (score sort, tie-break, min-rank grouping) is made on
// scores and strings, never on IDs. See DESIGN.md, "Interned evaluation".
//
// Regenerate with: go test -run TestRenderAllGolden -update-golden
func TestRenderAllGolden(t *testing.T) {
	cases := []struct {
		golden string
		cfg    Config
		shared bool // seed 7 is the shared facade config; reuse its study
	}{
		{"golden_seed7.txt", Config{Seed: 7, Sites: 1500, Clients: 500, Days: 5, AllCombos: true}, true},
		{"golden_seed9.txt", Config{Seed: 9, Sites: 400, Clients: 120, Days: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			var s *Study
			if tc.shared {
				s = facade(t)
			} else {
				var err error
				s, err = Run(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
			}
			var b strings.Builder
			if err := s.RenderAll(&b); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got := b.String(); got != string(want) {
				t.Errorf("RenderAll output differs from %s (len %d vs %d); first divergence at byte %d",
					path, len(got), len(want), firstDiff(got, string(want)))
			}
		})
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
