package toplists

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"toplists/internal/snapshot"
)

// crashcheck is the kill-anywhere chaos oracle behind `make crashcheck`:
// it builds the real toplistsd binary, runs it with a fast virtual-clock
// ticker and auto-checkpointing, SIGKILLs it at seed-keyed offsets —
// mid-day, between generations, and (via the TOPLISTSD_CRASHPOINT hook)
// mid-checkpoint-write — restarts it through the recovery supervisor
// each time, and requires the finished month to be byte-identical, over
// HTTP, to an uninterrupted run of the same binary: every probed list
// body and the resume-stable report. A separate test tears the newest
// generation on disk and requires recovery to fall back, visibly.

// crashScale keeps a 28-day month cheap enough to simulate several
// times per seed (the baseline plus every post-kill replay).
const (
	crashSites   = 300
	crashClients = 60
	crashDays    = 28
	crashKills   = 6 // >= 5 kill points per seed, one of them mid-write
)

// killLog appends one line per chaos event to $CRASHCHECK_LOG (the file
// CI uploads as an artifact) and mirrors it to the test log.
var killLogMu sync.Mutex

func killLogf(t *testing.T, format string, args ...any) {
	t.Helper()
	line := fmt.Sprintf(format, args...)
	t.Log(line)
	path := os.Getenv("CRASHCHECK_LOG")
	if path == "" {
		return
	}
	killLogMu.Lock()
	defer killLogMu.Unlock()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("crashcheck: log %s: %v", path, err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, line) //nolint:errcheck // artifact log is best effort
}

// buildDaemon compiles cmd/toplistsd once for all seeds.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "toplistsd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/toplistsd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build toplistsd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running toplistsd process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

var crashClient = &http.Client{Timeout: 5 * time.Minute}

// startDaemon launches the binary with -addr localhost:0, learns the
// bound address through -readyfile, and waits for /healthz.
func startDaemon(t *testing.T, bin string, env []string, args ...string) *daemon {
	t.Helper()
	ready := filepath.Join(t.TempDir(), "ready")
	cmd := exec.Command(bin, append([]string{"-addr", "localhost:0", "-readyfile", ready}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(ready); err == nil && len(b) > 0 {
			d := &daemon{cmd: cmd, base: "http://" + string(b)}
			if _, _, err := d.get("/healthz"); err == nil {
				return d
			}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
			t.Fatalf("daemon did not become healthy\nstderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (d *daemon) get(path string) (int, []byte, error) {
	resp, err := crashClient.Get(d.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

func (d *daemon) post(path string) (int, []byte, error) {
	resp, err := crashClient.Post(d.base+path, "", nil)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// mustGet fails the test on transport error or unexpected status.
func (d *daemon) mustGet(t *testing.T, path string) []byte {
	t.Helper()
	code, b, err := d.get(path)
	if err != nil || code != 200 {
		t.Fatalf("GET %s: code %d err %v\n%s", path, code, err, b)
	}
	return b
}

// day polls /v1/status; -1 while the daemon is unreachable.
func (d *daemon) day() int {
	code, b, err := d.get("/v1/status")
	if err != nil || code != 200 {
		return -1
	}
	var st struct {
		Day int `json:"day"`
	}
	if json.Unmarshal(b, &st) != nil {
		return -1
	}
	return st.Day
}

// sigkill simulates a crash: SIGKILL, no cleanup, wait for the corpse.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	d.cmd.Process.Kill() //nolint:errcheck
	d.cmd.Wait()         //nolint:errcheck // killed: non-zero by design
}

// stop shuts the daemon down gracefully and requires a clean exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
}

// waitKilled waits for the process to die on its own (the crashpoint
// hook SIGKILLs it from inside a checkpoint write).
func (d *daemon) waitKilled(t *testing.T) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill() //nolint:errcheck
		t.Fatal("crashpoint never fired: daemon still alive after 60s")
	}
}

func studyArgs(seed uint64) []string {
	return []string{
		"-seed", fmt.Sprint(seed),
		"-sites", fmt.Sprint(crashSites),
		"-clients", fmt.Sprint(crashClients),
		"-days", fmt.Sprint(crashDays),
		"-workers", "2",
		"-quiet",
	}
}

// probes is the comparison surface: every published list at an early,
// middle, and final day (full lists, k=0), plus the resume-stable report
// subset. Byte-identical bodies here mean the interrupted month and the
// straight month published the same study.
func probes(t *testing.T, d *daemon) []string {
	t.Helper()
	var st struct {
		Lists []string `json:"lists"`
	}
	if err := json.Unmarshal(d.mustGet(t, "/v1/status"), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Lists) == 0 {
		t.Fatal("status reports no lists")
	}
	ps := []string{"/v1/report?stable=1"}
	for _, list := range st.Lists {
		for _, day := range []int{9, 19, crashDays - 1} {
			ps = append(ps, fmt.Sprintf("/v1/rankings/%s?day=%d&k=0", list, day))
		}
	}
	return ps
}

func collect(t *testing.T, d *daemon, ps []string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(ps))
	for _, p := range ps {
		out[p] = d.mustGet(t, p)
	}
	return out
}

// baselineRun drives the same binary through an uninterrupted month and
// captures the probe bodies — HTTP against HTTP, like for like.
func baselineRun(t *testing.T, bin string, seed uint64) map[string][]byte {
	t.Helper()
	d := startDaemon(t, bin, nil, studyArgs(seed)...)
	defer d.stop(t)
	code, b, err := d.post(fmt.Sprintf("/v1/advance?days=%d", crashDays))
	if err != nil || code != 200 {
		t.Fatalf("baseline advance: code %d err %v\n%s", code, err, b)
	}
	return collect(t, d, probes(t, d))
}

// chaosRun kills the daemon crashKills times at seed-keyed offsets,
// restarting through the recovery supervisor each time, then lets the
// survivor finish the month and captures the same probes.
func chaosRun(t *testing.T, bin string, seed uint64, ckptDir string) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed))) //nolint:gosec // deterministic schedule, not crypto
	args := append(studyArgs(seed),
		"-tick", "25ms",
		"-checkpoint", ckptDir,
		"-autocheckpoint", "2",
		"-retain", "4",
	)
	dir, err := snapshot.OpenDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}

	for kill := 0; kill < crashKills; kill++ {
		// One kill detonates inside a checkpoint write via the binary's
		// crashpoint hook: the process's first checkpoint dies after half
		// a generation's worth of bytes, leaving a torn temp file
		// recovery must ignore. A manual POST /v1/checkpoint guarantees a
		// write happens even if the month already finished ticking.
		var env []string
		kind := "sigkill"
		if kill == crashKills/2 {
			off := int64(20000)
			if gen, err := dir.Latest(); err == nil {
				if fi, err := os.Stat(gen.Path); err == nil && fi.Size() > 2 {
					off = fi.Size() / 2
				}
			}
			env = []string{fmt.Sprintf("TOPLISTSD_CRASHPOINT=1:%d", off)}
			kind = "crashpoint"
		}

		d := startDaemon(t, bin, env, args...)
		if kind == "crashpoint" {
			day := d.day()
			go d.post("/v1/checkpoint") //nolint:errcheck // the daemon dies mid-response
			d.waitKilled(t)
			killLogf(t, "seed=%d kill=%d kind=%s day=%d (mid-checkpoint-write, self-inflicted)", seed, kill, kind, day)
			continue
		}
		// Hold the first process until a generation exists, so every
		// later restart has something to recover; then kill anywhere.
		if kill == 0 {
			deadline := time.Now().Add(60 * time.Second)
			for d.day() < 2 {
				if time.Now().After(deadline) {
					t.Fatal("first process never reached day 2")
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		sleep := time.Duration(10+rng.Intn(120)) * time.Millisecond
		time.Sleep(sleep)
		day := d.day()
		d.sigkill(t)
		killLogf(t, "seed=%d kill=%d kind=%s after=%v day=%d", seed, kill, kind, sleep, day)
	}

	// The surviving process recovers and finishes the month on its own
	// ticker.
	d := startDaemon(t, bin, nil, args...)
	defer d.stop(t)
	deadline := time.Now().Add(3 * time.Minute)
	for d.day() < crashDays {
		if time.Now().After(deadline) {
			t.Fatalf("chaos survivor stuck at day %d", d.day())
		}
		time.Sleep(10 * time.Millisecond)
	}
	killLogf(t, "seed=%d survivor finished day %d/%d", seed, d.day(), crashDays)
	return collect(t, d, probes(t, d))
}

// TestCrashCheck: for each seed, an uninterrupted month and a month
// killed crashKills times must publish byte-identical probe bodies.
func TestCrashCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("crashcheck builds and repeatedly kills the real binary; skipped with -short")
	}
	bin := buildDaemon(t)
	for _, seed := range []uint64{101, 202, 303} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			want := baselineRun(t, bin, seed)
			got := chaosRun(t, bin, seed, t.TempDir())
			if len(got) != len(want) {
				t.Fatalf("probe sets differ: %d vs %d", len(got), len(want))
			}
			for p, w := range want {
				g, ok := got[p]
				if !ok {
					t.Fatalf("chaos run missing probe %s", p)
				}
				if string(g) != string(w) {
					t.Errorf("probe %s differs after %d kills:\n--- uninterrupted ---\n%s\n--- chaos ---\n%s",
						p, crashKills, w, g)
				}
			}
		})
	}
}

// TestCrashCheckTornGeneration: a generation torn on disk (bit rot,
// partial write that somehow got renamed) must be rejected — visibly,
// in the volatile recovery counters — and recovery must fall back to
// the previous generation instead of refusing to start.
func TestCrashCheckTornGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("crashcheck builds and repeatedly kills the real binary; skipped with -short")
	}
	bin := buildDaemon(t)
	ckptDir := t.TempDir()
	args := append(studyArgs(404),
		"-tick", "3ms",
		"-checkpoint", ckptDir,
		"-autocheckpoint", "1",
		"-retain", "4",
	)

	d := startDaemon(t, bin, nil, args...)
	deadline := time.Now().Add(60 * time.Second)
	for d.day() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never reached day 3")
		}
		time.Sleep(2 * time.Millisecond)
	}
	d.sigkill(t)

	dir, err := snapshot.OpenDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := dir.Latest()
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(gen.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gen.Path, b[:len(b)/3], 0o666); err != nil {
		t.Fatal(err)
	}
	killLogf(t, "seed=404 tore generation %s (%d -> %d bytes)", gen.Name(), len(b), len(b)/3)

	d = startDaemon(t, bin, nil, args...)
	defer d.stop(t)
	var rep struct {
		Volatile map[string]int64 `json:"volatile"`
	}
	if err := json.Unmarshal(d.mustGet(t, "/v1/report"), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Volatile["recovery.rejected"] < 1 {
		t.Fatalf("torn generation was not rejected: volatile = %+v", rep.Volatile)
	}
	if got := rep.Volatile["recovery.resumed_gen"]; got >= int64(gen.Seq) || got < 1 {
		t.Fatalf("resumed generation %d, want an intact one below %d", got, gen.Seq)
	}
	if day := d.day(); day < 1 {
		t.Fatalf("fallback recovery left the study at day %d", day)
	}
	killLogf(t, "seed=404 fell back past %s, resumed gen %d", gen.Name(), rep.Volatile["recovery.resumed_gen"])
}
